#include "core/frontend.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/timer.h"

namespace hyqsat::core {

Frontend::Frontend(const chimera::ChimeraGraph &graph,
                   const FrontendOptions &opts,
                   MetricsRegistry *metrics)
    : graph_(graph), opts_(opts)
{
    if (metrics) {
        runs_ = metrics->counter("frontend.runs");
        cache_hits_ = metrics->counter("frontend.cache.hits");
        cache_misses_ = metrics->counter("frontend.cache.misses");
        cache_evictions_ =
            metrics->counter("frontend.cache.evictions");
        unsat_incremental_ =
            metrics->counter("frontend.unsat.incremental");
        unsat_scans_ = metrics->counter("frontend.unsat.scans");
        cache_s_ = metrics->timer("frontend.cache");
    }
}

FrontendResult
Frontend::run(const sat::Solver &solver, Rng &rng) const
{
    FrontendWorkspace ws;
    return run(solver, rng, ws);
}

FrontendResult
Frontend::run(const sat::Solver &solver, Rng &rng,
              FrontendWorkspace &ws) const
{
    Timer timer;
    FrontendResult result;
    metricInc(runs_);
    metricInc(solver.options().incremental_clause_tracking
                  ? unsat_incremental_
                  : unsat_scans_);

    generateClauseQueue(solver, opts_.queue, rng, ws.queue,
                        result.queue);
    if (result.queue.empty()) {
        // Invariant for the metrics contract: every run records
        // exactly one of hits/misses (an empty queue is a miss).
        metricInc(cache_misses_);
        result.embedded = std::make_shared<embed::QueueEmbedResult>();
        result.seconds = timer.seconds();
        return result;
    }

    ws.clauses.clear();
    for (int ci : result.queue)
        ws.clauses.push_back(solver.originalClause(ci));

    std::shared_ptr<const embed::QueueEmbedResult> embedded;
    if (opts_.cache_embeddings) {
        const MetricTimer::Scope scope(cache_s_);
        ws.cache.setCapacity(static_cast<std::size_t>(
            std::max(opts_.cache_capacity, 1)));
        embedded = ws.cache.find(ws.clauses);
    }

    if (embedded) {
        metricInc(cache_hits_);
    } else {
        metricInc(cache_misses_);
        embed::HyQsatEmbedder embedder(graph_, opts_.embedder);
        embedded = std::make_shared<embed::QueueEmbedResult>(
            embedder.embedQueue(ws.clauses, ws.embedder));
        if (opts_.cache_embeddings) {
            const MetricTimer::Scope scope(cache_s_);
            if (ws.cache.insert(ws.clauses, embedded))
                metricInc(cache_evictions_);
        }
    }
    result.embedded = std::move(embedded);

    result.embedded_clauses.assign(
        result.queue.begin(),
        result.queue.begin() + result.embedded->embedded_clauses);

    // The queue workspace's unsat set was computed against this very
    // trail during queue generation; reusing its size here removes
    // what used to be a second full clause rescan.
    result.covers_all_unsatisfied =
        result.embedded->all_embedded &&
        result.queue.size() == ws.queue.unsat.size();

    result.seconds = timer.seconds();
    return result;
}

} // namespace hyqsat::core
