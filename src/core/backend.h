/**
 * @file
 * HyQSAT backend (§V): interpret the annealer sample's energy via
 * the confidence-interval classifier and apply one of the four
 * feedback strategies to the CDCL solver:
 *
 *  S1  all clauses embedded + satisfiable  -> finish with the model
 *  S2  (near-)satisfiable                  -> adopt QA assignments
 *                                             as decision polarities
 *  S3  uncertain                           -> no guidance
 *  S4  near-unsatisfiable                  -> prioritize the embedded
 *                                             variables to reach the
 *                                             conflict quickly
 */

#ifndef HYQSAT_CORE_BACKEND_H
#define HYQSAT_CORE_BACKEND_H

#include <vector>

#include "anneal/annealer.h"
#include "bayes/intervals.h"
#include "core/frontend.h"
#include "sat/cnf.h"
#include "sat/solver.h"
#include "util/metrics.h"

namespace hyqsat::core {

/** Backend configuration, including per-strategy ablation switches. */
struct BackendOptions
{
    bayes::EnergyClassifier classifier; // paper cut points by default

    bool enable_strategy1 = true;
    bool enable_strategy2 = true;
    bool enable_strategy4 = true;

    /**
     * Strategy 2 optionally also raises the embedded variables'
     * decision priority. Off by default: empirically the phase
     * hints alone guide VSIDS better than forcing the decision
     * order (kept as an ablation knob).
     */
    bool strategy2_prioritize = false;

    /**
     * Use soft phase-saving seeds instead of forced polarities in
     * strategy 2. Soft hints lower the variance of the reduction
     * but also its mean; forced polarities ("maintain the variable
     * assignments", SV-B) measure better on the suite.
     */
    bool strategy2_soft_hints = false;

    /** Variable-priority bump factor used by strategy 4. */
    double priority_bump = 100.0;
};

/** What the backend did with one sample. */
struct BackendOutcome
{
    bayes::SatisfactionClass cls = bayes::SatisfactionClass::Uncertain;

    /** Strategy applied (1..4; 3 means "no guidance"). */
    int strategy = 3;

    /** Strategy 1 fired: the full formula is satisfied by model. */
    bool solved = false;

    /** Complete assignment (indexed by variable) when solved. */
    std::vector<bool> model;

    /** Host CPU seconds spent interpreting. */
    double seconds = 0.0;
};

/** The backend interpreter. */
class Backend
{
  public:
    /**
     * @param metrics optional registry: per-strategy counters
     *        (backend.strategy1..4), energy-class counters
     *        (backend.class.<name>), a sample counter and the
     *        interpretation timer. nullptr records nothing.
     */
    explicit Backend(const BackendOptions &opts,
                     MetricsRegistry *metrics = nullptr);

    /**
     * Classify @p sample and apply the matching feedback strategy to
     * @p solver. @p formula is the full input formula (needed to
     * verify a strategy-1 model).
     */
    BackendOutcome apply(sat::Solver &solver,
                         const FrontendResult &frontend,
                         const anneal::AnnealSample &sample,
                         const sat::Cnf &formula) const;

    const BackendOptions &options() const { return opts_; }

  private:
    void record(const BackendOutcome &out) const;

    BackendOptions opts_;

    /** Resolved record handles, all null without a registry. */
    Counter *m_samples_ = nullptr;
    Counter *m_solved_ = nullptr;
    Counter *m_strategy_[5] = {};       ///< index 1..4
    Counter *m_class_[4] = {};          ///< by SatisfactionClass
    MetricTimer *m_apply_s_ = nullptr;
};

} // namespace hyqsat::core

#endif // HYQSAT_CORE_BACKEND_H
