/**
 * @file
 * Classifier calibration (§V-A): the paper fits its Gaussian Naive
 * Bayes energy classifier by running known satisfiable and
 * unsatisfiable problems through the annealer and partitioning the
 * energy axis at the 90% confidence crossings. This module packages
 * that protocol so a deployment can calibrate against its own
 * device/noise model instead of the published D-Wave 2000Q cuts.
 */

#ifndef HYQSAT_CORE_CALIBRATION_H
#define HYQSAT_CORE_CALIBRATION_H

#include <vector>

#include "anneal/annealer.h"
#include "bayes/intervals.h"
#include "chimera/chimera.h"
#include "util/rng.h"

namespace hyqsat::core {

/** Calibration options. */
struct CalibrationOptions
{
    /** Labeled problems collected per class (sat / unsat). */
    int problems_per_class = 200;

    /** Clause-count range of the probe problems. */
    int min_clauses = 20;
    int max_clauses = 45;

    /** Confidence factor for the interval cut points. */
    double confidence = 0.9;

    /**
     * Classify on the device-reported (alpha-weighted) energy
     * (true) or the unit clause-space energy (false).
     */
    bool use_weighted_energy = false;

    std::uint64_t seed = 0xca11b;
};

/** Calibration result: the classifier plus the raw training data. */
struct CalibrationResult
{
    bayes::EnergyClassifier classifier;
    std::vector<double> energies;
    std::vector<bool> satisfiable;

    /** Training accuracy of the fitted model. */
    double accuracy = 0.0;
};

/**
 * Run the §V-A calibration protocol against @p annealer on
 * @p graph: generate labeled random problems (planted satisfiable /
 * over-constrained unsatisfiable, labels verified by the CDCL
 * solver), embed each with the fast embedder, draw one sample per
 * problem and fit the confidence intervals.
 */
CalibrationResult
calibrateEnergyClassifier(anneal::QuantumAnnealer &annealer,
                          const chimera::ChimeraGraph &graph,
                          const CalibrationOptions &opts = {});

} // namespace hyqsat::core

#endif // HYQSAT_CORE_CALIBRATION_H
