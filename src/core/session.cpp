#include "core/session.h"

#include <cmath>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace hyqsat::core {

namespace {

/** Per-call deltas of the cumulative CDCL counters. */
sat::SolverStats
statsDelta(const sat::SolverStats &after, const sat::SolverStats &before)
{
    sat::SolverStats d;
    d.decisions = after.decisions - before.decisions;
    d.propagations = after.propagations - before.propagations;
    d.conflicts = after.conflicts - before.conflicts;
    d.restarts = after.restarts - before.restarts;
    d.learned_clauses = after.learned_clauses - before.learned_clauses;
    d.removed_clauses = after.removed_clauses - before.removed_clauses;
    d.minimized_literals =
        after.minimized_literals - before.minimized_literals;
    d.reduce_dbs = after.reduce_dbs - before.reduce_dbs;
    d.exported_clauses = after.exported_clauses - before.exported_clauses;
    d.imported_clauses = after.imported_clauses - before.imported_clauses;
    d.iterations = after.iterations - before.iterations;
    return d;
}

PipelineStats
pipelineDelta(const PipelineStats &after, const PipelineStats &before)
{
    PipelineStats d;
    d.submitted = after.submitted - before.submitted;
    d.harvested = after.harvested - before.harvested;
    d.stale_discarded = after.stale_discarded - before.stale_discarded;
    d.stalls = after.stalls - before.stalls;
    d.frontend_s = after.frontend_s - before.frontend_s;
    d.host_sample_s = after.host_sample_s - before.host_sample_s;
    d.device_s = after.device_s - before.device_s;
    d.inflight_s = after.inflight_s - before.inflight_s;
    d.blocking_s = after.blocking_s - before.blocking_s;
    d.chain_breaks = after.chain_breaks - before.chain_breaks;
    return d;
}

/** @return true iff @p model (indexed by variable) satisfies @p p. */
bool
litHolds(const std::vector<bool> &model, sat::Lit p)
{
    const auto v = static_cast<std::size_t>(p.var());
    if (v >= model.size())
        return false;
    return model[v] != p.sign();
}

} // namespace

std::unique_ptr<Session>
HybridSolver::openSession() const
{
    return std::make_unique<Session>(config_);
}

Session::Session(const HybridConfig &config)
    : config_(config),
      graph_(config.topology, config.chimera_rows,
             config.chimera_cols, config.chimera_shore)
{
    if (config_.metrics)
        metrics_.setTrace(config_.metrics->trace());
    metrics_.counter("session.solves");
    metrics_.counter("session.recompiles");
    metrics_.counter("session.delta_clauses");
}

Session::~Session()
{
    // Lifetime totals fold into the configured registry exactly once,
    // mirroring what a sequence of HybridSolver::solve calls would
    // have accumulated there.
    if (config_.metrics)
        config_.metrics->merge(metrics_);
}

void
Session::freeze(sat::Var v)
{
    if (v < 0)
        return;
    if (frozen_.insert(v).second && compiled_ &&
        simp_.mapLiteral(sat::mkLit(v, false)).kind ==
            simplify::MappedLit::Kind::Eliminated) {
        need_recompile_ = true;
    }
}

bool
Session::addClause(sat::LitVec lits)
{
    if (lits.size() > 3) {
        fatal("Session requires 3-SAT input (clause has %d literals); "
              "convert with sat::toThreeSat first",
              static_cast<int>(lits.size()));
    }
    accumulated_.addClause(lits);
    metrics_.counter("session.delta_clauses")->add(1);
    if (!compiled_ || need_recompile_ || formula_unsat_)
        return !formula_unsat_;

    // Live path: translate into the compile's space and attach to
    // the running solver, keeping its learnt state.
    sat::LitVec mapped;
    for (const sat::Lit p : lits) {
        const simplify::MappedLit m = simp_.mapLiteral(p);
        switch (m.kind) {
          case simplify::MappedLit::Kind::True:
            return true; // already satisfied at the root
          case simplify::MappedLit::Kind::False:
            break; // literal drops out
          case simplify::MappedLit::Kind::Eliminated:
            // The variable only exists in the reconstruction stack;
            // re-simplify with it frozen before the next solve.
            need_recompile_ = true;
            return true;
          case simplify::MappedLit::Kind::Free:
            mapped.push_back(m.lit);
            break;
        }
    }
    work_.addClause(mapped);
    if (!solver_->addClause(std::move(mapped), work_.numClauses() - 1))
        formula_unsat_ = true;
    return !formula_unsat_;
}

bool
Session::addFormula(const sat::Cnf &cnf)
{
    accumulated_.ensureVars(cnf.numVars());
    bool ok = !formula_unsat_;
    for (const sat::LitVec &c : cnf.clauses())
        ok = addClause(c);
    return ok;
}

void
Session::recompile()
{
    ++recompiles_;
    metrics_.counter("session.recompiles")->add(1);
    compiled_ = true;
    need_recompile_ = false;
    formula_unsat_ = false;
    final_conflict_.clear();

    simplify::Options so =
        simplify::Options::preset(config_.simplify_strength);
    so.frozen.assign(frozen_.begin(), frozen_.end());
    simp_ = simplify::Pipeline(so, &metrics_).run(accumulated_);
    if (!simp_.satisfiable_possible) {
        formula_unsat_ = true;
        return;
    }
    work_ = simp_.cnf;

    // Rebuild the warm state against the new formula. The pipeline
    // references frontend/sampler/rng, so it goes first.
    pipeline_.reset();
    frontend_ = std::make_unique<Frontend>(graph_, config_.frontend,
                                           &metrics_);
    backend_ = std::make_unique<Backend>(config_.backend, &metrics_);
    anneal::SamplerSpec spec = hybridSamplerSpec(config_);
    spec.metrics = &metrics_;
    sampler_ = anneal::makeSampler(spec, graph_);
    rng_ = Rng(config_.seed);
    pipeline_ = std::make_unique<SamplePipeline>(
        *frontend_, *sampler_, rng_, config_.use_embedding, &metrics_);

    solver_ = std::make_unique<sat::Solver>(config_.solver);
    solver_->attachMetrics(&metrics_);
    if (config_.stop)
        solver_->setStopToken(config_.stop);
    if (config_.learnt_export)
        solver_->setLearntExportHook(config_.learnt_export);
    if (config_.root_hook)
        solver_->setRootHook(config_.root_hook);
    if (!solver_->loadCnf(work_)) {
        formula_unsat_ = true;
        return;
    }
    if (pipeline_->asynchronous()) {
        SamplePipeline *pipeline = pipeline_.get();
        solver_->setConflictHook([pipeline](sat::Solver &s) {
            pipeline->notifyConflict(s.stats().conflicts);
        });
    }
}

bool
Session::mapAssumptions(
    const sat::LitVec &assumptions, sat::LitVec &mapped,
    std::vector<std::pair<sat::Lit, sat::Lit>> &amap)
{
    for (int attempt = 0;; ++attempt) {
        mapped.clear();
        amap.clear();
        std::vector<sat::Var> must_freeze;
        sat::LitVec falsified;
        for (const sat::Lit a : assumptions) {
            const simplify::MappedLit m = simp_.mapLiteral(a);
            switch (m.kind) {
              case simplify::MappedLit::Kind::True:
                break; // holds at the root: nothing to assume
              case simplify::MappedLit::Kind::False:
                falsified.push_back(~a);
                break;
              case simplify::MappedLit::Kind::Eliminated:
                must_freeze.push_back(a.var());
                break;
              case simplify::MappedLit::Kind::Free:
                mapped.push_back(m.lit);
                amap.emplace_back(m.lit, a);
                break;
            }
        }
        if (!falsified.empty()) {
            final_conflict_ = std::move(falsified);
            return false;
        }
        if (must_freeze.empty())
            return true;
        // Freezing the original variable keeps it out of both the
        // SCC substitution and BVE next time, so the retry cannot
        // see Eliminated again for it; two rounds always suffice.
        if (attempt >= 2)
            panic("assumption mapping failed to stabilize");
        for (const sat::Var v : must_freeze)
            frozen_.insert(v);
        recompile();
        if (formula_unsat_)
            return true; // caller notices via the flag
    }
}

HybridResult
Session::solve(const sat::LitVec &assumptions)
{
    Timer total_timer;
    ++solves_;
    metrics_.counter("session.solves")->add(1);
    HybridResult result;
    result.status = sat::l_Undef;
    final_conflict_.clear();

    // Every assumption variable is permanently frozen: later
    // recompiles must keep it mappable too.
    for (const sat::Lit a : assumptions) {
        accumulated_.ensureVars(a.var() + 1);
        freeze(a.var());
    }
    if (!compiled_ || need_recompile_)
        recompile();

    sat::LitVec mapped;
    std::vector<std::pair<sat::Lit, sat::Lit>> amap;
    bool assumptions_ok = true;
    if (!formula_unsat_)
        assumptions_ok = mapAssumptions(assumptions, mapped, amap);
    if (formula_unsat_ || !assumptions_ok) {
        // formula_unsat_: UNSAT regardless of assumptions — the core
        // is empty. Otherwise a root-falsified assumption: the core
        // already names it.
        if (formula_unsat_)
            final_conflict_.clear();
        result.status = sat::l_False;
        result.time.cdcl_s = total_timer.seconds();
        metrics_.timer("hybrid.total")->add(result.time.cdcl_s);
        return result;
    }

    // Per-call determinism: restart the queue-sampling stream from
    // the session seed so a repeated call pattern regenerates the
    // same clause queues — and hits the retained embedding memo
    // instead of re-embedding. The stream still diverges within a
    // call as the trail evolves.
    rng_ = Rng(config_.seed);

    const sat::SolverStats before = solver_->stats();
    const PipelineStats ps_before = pipeline_->stats();
    Counter *const warmup_counter =
        metrics_.counter("hybrid.warmup_iterations");
    const std::uint64_t warmup_before = warmup_counter->value();
    const std::uint64_t samples_before =
        metrics_.counter("backend.samples")->value();
    const double backend_s_before =
        metrics_.timer("backend.apply")->seconds();
    std::array<std::uint64_t, 5> strategy_before{};
    for (int k = 1; k <= 4; ++k) {
        strategy_before[static_cast<std::size_t>(k)] =
            metrics_.counter("backend.strategy" + std::to_string(k))
                ->value();
    }

    // Per-call warm-up window: sqrt(K) fresh QA-assisted iterations
    // on top of whatever the session already spent, so a long-lived
    // session keeps getting annealer guidance on new assumptions.
    std::int64_t warmup = config_.warmup_override;
    if (warmup < 0) {
        warmup = static_cast<std::int64_t>(std::llround(std::sqrt(
            static_cast<double>(HybridSolver::estimateIterations(
                work_.numVars(), work_.numClauses())))));
    }
    warmup = std::min(warmup, config_.max_warmup);
    const std::int64_t warm_end =
        static_cast<std::int64_t>(before.iterations) + warmup;

    bool qa_solved = false;
    std::vector<bool> qa_model;
    solver_->setIterationHook([&](sat::Solver &s) {
        if (static_cast<std::int64_t>(s.stats().iterations) >=
            warm_end) {
            return;
        }
        if (config_.stop && config_.stop->stopRequested())
            return;
        warmup_counter->add();

        ready_.clear();
        pipeline_->step(s, s.stats().conflicts, ready_);
        for (ReadySample &rs : ready_) {
            const BackendOutcome outcome =
                backend_->apply(s, *rs.frontend, rs.sample, work_);
            if (!outcome.solved)
                continue;
            // Strategy 1 proves the *formula* satisfiable; under
            // assumptions the sample only ends this call if it also
            // honors them (they are constraints the annealer never
            // saw). A near-miss still helped as polarity guidance.
            bool honors = true;
            for (const auto &pr : amap)
                honors = honors && litHolds(outcome.model, pr.first);
            if (!honors)
                continue;
            qa_solved = true;
            qa_model = outcome.model;
            s.requestStop();
            break;
        }
    });

    const sat::lbool status = solver_->solveWithAssumptions(mapped);
    solver_->setIterationHook({}); // hook captures this frame

    result.stats = statsDelta(solver_->stats(), before);
    const PipelineStats ps =
        pipelineDelta(pipeline_->stats(), ps_before);
    result.qa_submitted = ps.submitted;
    result.qa_stale = ps.stale_discarded;
    result.chain_breaks = ps.chain_breaks;
    result.time.frontend_s = ps.frontend_s;
    result.time.qa_device_s = ps.device_s;
    result.time.qa_host_s = ps.host_sample_s;
    result.time.qa_inflight_s = ps.inflight_s;
    result.time.qa_blocking_s = ps.blocking_s;
    result.time.stalls = ps.stalls;
    result.warmup_iterations =
        static_cast<int>(warmup_counter->value() - warmup_before);
    result.qa_samples = static_cast<int>(
        metrics_.counter("backend.samples")->value() - samples_before);
    result.time.backend_s =
        metrics_.timer("backend.apply")->seconds() - backend_s_before;
    for (int k = 1; k <= 4; ++k) {
        result.strategy_count[static_cast<std::size_t>(k)] =
            metrics_.counter("backend.strategy" + std::to_string(k))
                ->value() -
            strategy_before[static_cast<std::size_t>(k)];
    }

    if (qa_solved) {
        result.status = sat::l_True;
        result.model = simp_.extendModel(std::move(qa_model));
        result.solved_by_qa = true;
    } else {
        result.status = status;
        if (status.isTrue())
            result.model = simp_.extendModel(solver_->boolModel());
    }
    if (result.status.isTrue()) {
        if (static_cast<int>(result.model.size()) <
            accumulated_.numVars()) {
            result.model.resize(
                static_cast<std::size_t>(accumulated_.numVars()),
                false);
        }
        if (!accumulated_.eval(result.model))
            panic("session model failed verification");
        for (const sat::Lit a : assumptions) {
            if (!litHolds(result.model, a))
                panic("session model violates an assumption");
        }
    } else if (result.status.isFalse()) {
        // Map the solver's core (negated mapped assumptions) back to
        // the original literals it came from.
        final_conflict_.clear();
        for (const sat::Lit c : solver_->finalConflict()) {
            for (const auto &pr : amap) {
                if (~pr.first != c)
                    continue;
                const sat::Lit orig = ~pr.second;
                bool dup = false;
                for (const sat::Lit q : final_conflict_)
                    dup = dup || q == orig;
                if (!dup)
                    final_conflict_.push_back(orig);
            }
        }
        if (!solver_->okay())
            formula_unsat_ = true;
    }

    const double total = total_timer.seconds();
    const double sim_cost =
        pipeline_->asynchronous() ? 0.0 : result.time.qa_host_s;
    result.time.cdcl_s =
        std::max(0.0, total - result.time.frontend_s -
                          result.time.backend_s - sim_cost);
    metrics_.timer("hybrid.total")->add(total);
    metrics_.timer("hybrid.cdcl")->add(result.time.cdcl_s);
    return result;
}

} // namespace hyqsat::core
