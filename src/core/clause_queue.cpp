#include "core/clause_queue.h"

#include <algorithm>

namespace hyqsat::core {

std::vector<int>
generateClauseQueue(const sat::Solver &solver,
                    const ClauseQueueOptions &opts, Rng &rng)
{
    ClauseQueueWorkspace ws;
    std::vector<int> queue;
    generateClauseQueue(solver, opts, rng, ws, queue);
    return queue;
}

void
generateClauseQueue(const sat::Solver &solver,
                    const ClauseQueueOptions &opts, Rng &rng,
                    ClauseQueueWorkspace &ws,
                    std::vector<int> &out_queue)
{
    out_queue.clear();
    solver.unsatisfiedOriginalClausesInto(ws.unsat);
    if (ws.unsat.empty())
        return;

    if (opts.random_queue) {
        out_queue.assign(ws.unsat.begin(), ws.unsat.end());
        rng.shuffle(out_queue);
        if (static_cast<int>(out_queue.size()) > opts.capacity)
            out_queue.resize(opts.capacity);
        return;
    }

    // Head: uniform among the top-k activity scores. Random choice
    // avoids re-deploying the same clauses when scores are static.
    ws.by_score.assign(ws.unsat.begin(), ws.unsat.end());
    const auto k = std::min<std::size_t>(ws.by_score.size(),
                                         static_cast<std::size_t>(
                                             std::max(opts.top_k, 1)));
    std::partial_sort(ws.by_score.begin(), ws.by_score.begin() + k,
                      ws.by_score.end(), [&](int a, int b) {
                          return solver.clauseActivityScore(a) >
                                 solver.clauseActivityScore(b);
                      });
    const int head = ws.by_score[rng.below(k)];

    // Shared-variable index over the unsatisfied clauses. Dense
    // per-variable lists replace the map of the allocating path; the
    // per-variable insertion order is identical, so lookups (and
    // therefore the BFS order) are too.
    if (ws.var_clauses.size() <
        static_cast<std::size_t>(solver.numVars())) {
        ws.var_clauses.resize(solver.numVars());
    }
    if (ws.queued.size() <
        static_cast<std::size_t>(solver.numOriginalClauses())) {
        ws.queued.resize(solver.numOriginalClauses(), 0);
    }
    for (int ci : ws.unsat) {
        for (sat::Lit p : solver.originalClause(ci)) {
            auto &list = ws.var_clauses[p.var()];
            if (list.empty())
                ws.touched_vars.push_back(p.var());
            list.push_back(ci);
        }
    }

    // Breadth-first traversal over shared variables.
    out_queue.push_back(head);
    ws.queued[head] = 1;
    bool full = false;
    for (std::size_t at = 0;
         !full && at < out_queue.size() &&
         static_cast<int>(out_queue.size()) < opts.capacity;
         ++at) {
        for (sat::Lit p : solver.originalClause(out_queue[at])) {
            for (int ci : ws.var_clauses[p.var()]) {
                if (!ws.queued[ci]) {
                    ws.queued[ci] = 1;
                    out_queue.push_back(ci);
                    if (static_cast<int>(out_queue.size()) >=
                        opts.capacity) {
                        full = true;
                        break;
                    }
                }
            }
            if (full)
                break;
        }
    }

    // Reset marks and per-variable lists, keeping their capacity.
    // Marks are set exactly for queued clauses, so clearing by the
    // queue is complete.
    for (int ci : out_queue)
        ws.queued[ci] = 0;
    for (sat::Var v : ws.touched_vars)
        ws.var_clauses[v].clear();
    ws.touched_vars.clear();
}

} // namespace hyqsat::core
