#include "core/clause_queue.h"

#include <algorithm>
#include <unordered_map>

namespace hyqsat::core {

std::vector<int>
generateClauseQueue(const sat::Solver &solver,
                    const ClauseQueueOptions &opts, Rng &rng)
{
    std::vector<int> unsat = solver.unsatisfiedOriginalClauses();
    if (unsat.empty())
        return {};

    if (opts.random_queue) {
        rng.shuffle(unsat);
        if (static_cast<int>(unsat.size()) > opts.capacity)
            unsat.resize(opts.capacity);
        return unsat;
    }

    // Head: uniform among the top-k activity scores. Random choice
    // avoids re-deploying the same clauses when scores are static.
    std::vector<int> by_score = unsat;
    const auto k = std::min<std::size_t>(by_score.size(),
                                         static_cast<std::size_t>(
                                             std::max(opts.top_k, 1)));
    std::partial_sort(by_score.begin(), by_score.begin() + k,
                      by_score.end(), [&](int a, int b) {
                          return solver.clauseActivityScore(a) >
                                 solver.clauseActivityScore(b);
                      });
    const int head = by_score[rng.below(k)];

    // Shared-variable index over the unsatisfied clauses.
    std::unordered_map<sat::Var, std::vector<int>> var_clauses;
    for (int ci : unsat)
        for (sat::Lit p : solver.originalClause(ci))
            var_clauses[p.var()].push_back(ci);

    // Breadth-first traversal over shared variables.
    std::vector<int> queue{head};
    std::unordered_map<int, bool> queued{{head, true}};
    for (std::size_t at = 0;
         at < queue.size() &&
         static_cast<int>(queue.size()) < opts.capacity;
         ++at) {
        for (sat::Lit p : solver.originalClause(queue[at])) {
            for (int ci : var_clauses[p.var()]) {
                if (queued.emplace(ci, true).second) {
                    queue.push_back(ci);
                    if (static_cast<int>(queue.size()) >=
                        opts.capacity) {
                        return queue;
                    }
                }
            }
        }
    }
    return queue;
}

} // namespace hyqsat::core
