/**
 * @file
 * The sampling pipeline between the CDCL iteration hook and a
 * Sampler backend. Owns the cached FrontendResult (the clause
 * queue's activity basis only changes at conflicts, so the frontend
 * pass is reused across conflict-free decision stretches) and the
 * in-flight bookkeeping that lets an asynchronous backend overlap
 * device latency with CDCL search.
 *
 * Epochs and staleness: every submission is tagged with the solver's
 * conflict count (its "epoch"). A conflict rebuilds the clause queue,
 * so a sample harvested at a later epoch answers a question the
 * search is no longer asking — it is discarded as stale rather than
 * applied. The depth-1 synchronous configuration submits and
 * harvests within one hook call, so no sample can ever go stale and
 * the loop is bit-for-bit the classic blocking behavior.
 */

#ifndef HYQSAT_CORE_PIPELINE_H
#define HYQSAT_CORE_PIPELINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "anneal/sampler.h"
#include "core/frontend.h"
#include "sat/solver.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hyqsat::core {

/**
 * Pipeline counters folded into HybridResult after a solve. This is
 * a *view* snapshotted from the metrics registry (stats()): the
 * registry is the single source of truth, the struct just gives the
 * hybrid loop and the tests a stable typed window onto it.
 */
struct PipelineStats
{
    int submitted = 0;       ///< jobs handed to the sampler
    int harvested = 0;       ///< completions received back
    int stale_discarded = 0; ///< harvested at a newer epoch
    int stalls = 0;          ///< submit wanted, pipeline full

    double frontend_s = 0.0;    ///< queue + encode + embed host time
    double host_sample_s = 0.0; ///< device-simulation host time
    double device_s = 0.0;      ///< modeled device time, all samples
    double inflight_s = 0.0;    ///< wall time jobs spent in flight
    double blocking_s = 0.0;    ///< device time NOT hidden by overlap
    int chain_breaks = 0;
};

/** A fresh completion ready for backend interpretation. */
struct ReadySample
{
    /** Frontend pass the job was built from (same epoch). */
    std::shared_ptr<const FrontendResult> frontend;
    anneal::AnnealSample sample;
};

/** The iteration-hook state machine. */
class SamplePipeline
{
  public:
    /**
     * @param metrics registry receiving the pipeline's counters,
     *        phase timers, in-flight occupancy histogram and stall
     *        spans; nullptr uses a private registry so stats() is
     *        always available (single source of truth either way).
     */
    SamplePipeline(const Frontend &frontend, anneal::Sampler &sampler,
                   Rng &rng, bool use_embedding,
                   MetricsRegistry *metrics = nullptr);

    /**
     * One pipeline advance at a decision iteration: refresh the
     * frontend cache when @p epoch moved, submit a job if the
     * sampler has capacity (a full pipeline counts a stall), then
     * harvest. Fresh completions are appended to @p ready; stale
     * ones are discarded and counted.
     */
    void step(const sat::Solver &solver, std::uint64_t epoch,
              std::vector<ReadySample> &ready);

    /**
     * Completion-notification point, invoked from the solver's
     * conflict hook: every in-flight job predates the conflict and
     * is now stale, so harvest (and discard) whatever already
     * finished to free pipeline slots before the next decision.
     */
    void notifyConflict(std::uint64_t epoch);

    /** True when the backend overlaps sampling with search. */
    bool asynchronous() const { return sampler_.capacity() > 1; }

    /** Snapshot of the registry's pipeline.* metrics. */
    PipelineStats stats() const;

  private:
    struct InFlight
    {
        std::uint64_t ticket;
        std::uint64_t epoch;
        std::shared_ptr<const FrontendResult> frontend;
        Timer since_submit; ///< started after submit() returned
    };

    void refreshCache(const sat::Solver &solver, std::uint64_t epoch);
    void harvest(std::uint64_t epoch, std::vector<ReadySample> *ready);

    const Frontend &frontend_;
    anneal::Sampler &sampler_;
    Rng &rng_;
    bool use_embedding_;

    std::shared_ptr<const FrontendResult> cache_;
    std::uint64_t cache_epoch_ = ~0ull;
    std::vector<InFlight> inflight_;

    /**
     * Frontend fast-path buffers + embedding cache, reused across
     * every refresh this pipeline performs. Mutable state of the
     * pipeline, not of the (shared, const) Frontend.
     */
    FrontendWorkspace workspace_;

    /** Private fallback registry when the caller supplies none. */
    std::unique_ptr<MetricsRegistry> own_metrics_;

    // Resolved record handles (always non-null: the pipeline records
    // unconditionally; the one-branch contract applies to *callers*
    // that never construct a pipeline).
    Counter *m_submitted_;
    Counter *m_harvested_;
    Counter *m_stale_;
    Counter *m_stalls_;
    Counter *m_chain_breaks_;
    MetricTimer *m_frontend_s_;
    MetricTimer *m_host_sample_s_;
    MetricTimer *m_device_s_;
    MetricTimer *m_inflight_s_;
    MetricTimer *m_blocking_s_;
    MetricTimer *m_stall_span_s_;
    LatencyHistogram *m_occupancy_;
    TraceSink *trace_;

    /** Open stall span: set while consecutive steps find us full. */
    bool in_stall_ = false;
    Timer stall_timer_;
};

} // namespace hyqsat::core

#endif // HYQSAT_CORE_PIPELINE_H
