#include "core/calibration.h"

#include "embed/hyqsat_embedder.h"
#include "gen/random_sat.h"
#include "sat/solver.h"
#include "util/logging.h"

namespace hyqsat::core {

CalibrationResult
calibrateEnergyClassifier(anneal::QuantumAnnealer &annealer,
                          const chimera::ChimeraGraph &graph,
                          const CalibrationOptions &opts)
{
    CalibrationResult result;
    Rng rng(opts.seed);

    const int span = std::max(opts.max_clauses - opts.min_clauses, 1);
    int made_sat = 0, made_unsat = 0, guard = 0;
    const int budget = 400 * opts.problems_per_class;
    while ((made_sat < opts.problems_per_class ||
            made_unsat < opts.problems_per_class) &&
           ++guard < budget) {
        const bool want_sat = made_sat <= made_unsat;
        const int clauses =
            opts.min_clauses + static_cast<int>(rng.below(span + 1));
        sat::Cnf cnf;
        if (want_sat) {
            // Planted instances: satisfiable by construction but
            // still verified below.
            cnf = gen::plantedRandom3Sat(
                10 + clauses / 2 + static_cast<int>(rng.below(20)),
                clauses, rng);
        } else {
            // Heavily over-constrained: almost surely unsatisfiable.
            cnf = gen::uniformRandom3Sat(
                std::max(5, clauses / 8), clauses, rng);
        }
        sat::Solver check;
        const bool is_sat =
            check.loadCnf(cnf) && check.solve().isTrue();
        if ((is_sat ? made_sat : made_unsat) >=
            opts.problems_per_class) {
            continue;
        }

        embed::HyQsatEmbedder embedder(graph);
        const std::vector<sat::LitVec> queue(cnf.clauses().begin(),
                                             cnf.clauses().end());
        const auto fx = embedder.embedQueue(queue);
        if (!fx.all_embedded)
            continue; // calibration uses fully embedded problems

        const auto sample = annealer.sample(fx.problem, fx.embedding);
        result.energies.push_back(opts.use_weighted_energy
                                      ? sample.weighted_energy
                                      : sample.clause_energy);
        result.satisfiable.push_back(is_sat);
        (is_sat ? made_sat : made_unsat)++;
    }
    if (result.energies.size() < 8) {
        fatal("calibrateEnergyClassifier: collected only %zu "
              "samples; widen the clause range or the chip",
              result.energies.size());
    }

    result.classifier.fit(result.energies, result.satisfiable,
                          opts.confidence);

    std::vector<std::vector<double>> features;
    std::vector<int> labels;
    for (std::size_t i = 0; i < result.energies.size(); ++i) {
        features.push_back({result.energies[i]});
        labels.push_back(result.satisfiable[i] ? 1 : 0);
    }
    result.accuracy =
        result.classifier.model().accuracy(features, labels);
    return result;
}

} // namespace hyqsat::core
