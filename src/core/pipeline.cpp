#include "core/pipeline.h"

#include <algorithm>

namespace hyqsat::core {

SamplePipeline::SamplePipeline(const Frontend &frontend,
                               anneal::Sampler &sampler, Rng &rng,
                               bool use_embedding)
    : frontend_(frontend), sampler_(sampler), rng_(rng),
      use_embedding_(use_embedding)
{
}

void
SamplePipeline::refreshCache(const sat::Solver &solver,
                             std::uint64_t epoch)
{
    if (cache_ && cache_epoch_ == epoch)
        return;
    auto fe =
        std::make_shared<FrontendResult>(frontend_.run(solver, rng_));
    stats_.frontend_s += fe->seconds;
    cache_ = std::move(fe);
    cache_epoch_ = epoch;
}

void
SamplePipeline::step(const sat::Solver &solver, std::uint64_t epoch,
                     std::vector<ReadySample> &ready)
{
    refreshCache(solver, epoch);

    if (!cache_->embedded_clauses.empty()) {
        if (static_cast<int>(inflight_.size()) < sampler_.capacity()) {
            // Aliasing shared_ptrs: the request pins the cached
            // frontend result (no deep copy of problem/embedding per
            // submission), and keeps it alive across cache refreshes
            // while the job is in flight.
            anneal::SampleRequest request;
            request.problem = std::shared_ptr<const qubo::EncodedProblem>(
                cache_, &cache_->embedded.problem);
            request.embedding = std::shared_ptr<const embed::Embedding>(
                cache_, &cache_->embedded.embedding);
            request.use_embedding = use_embedding_;
            const std::uint64_t ticket =
                sampler_.submit(std::move(request));
            // The Timer starts after submit() returns so a
            // synchronous backend's compute time does not count as
            // overlap (the loop was blocked, nothing was hidden).
            inflight_.push_back(InFlight{ticket, epoch, cache_, Timer{}});
            ++stats_.submitted;
        } else {
            ++stats_.stalls;
        }
    }

    harvest(epoch, &ready);
}

void
SamplePipeline::notifyConflict(std::uint64_t epoch)
{
    if (inflight_.empty())
        return;
    harvest(epoch, nullptr);
}

void
SamplePipeline::harvest(std::uint64_t epoch,
                        std::vector<ReadySample> *ready)
{
    std::vector<anneal::SampleCompletion> done;
    sampler_.poll(done);
    for (auto &completion : done) {
        const auto it = std::find_if(
            inflight_.begin(), inflight_.end(), [&](const InFlight &f) {
                return f.ticket == completion.ticket;
            });
        if (it == inflight_.end())
            continue; // not ours (cannot happen with one pipeline)

        const double wall = it->since_submit.seconds();
        const double device_s = completion.sample.device_time_us * 1e-6;
        ++stats_.harvested;
        stats_.inflight_s += wall;
        stats_.blocking_s += std::max(0.0, device_s - wall);
        stats_.device_s += device_s;
        stats_.host_sample_s += completion.host_seconds;
        stats_.chain_breaks += completion.sample.chain_breaks;

        if (it->epoch != epoch || ready == nullptr) {
            ++stats_.stale_discarded;
        } else {
            ready->push_back(ReadySample{
                it->frontend, std::move(completion.sample)});
        }
        inflight_.erase(it);
    }
}

} // namespace hyqsat::core
