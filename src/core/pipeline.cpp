#include "core/pipeline.h"

#include <algorithm>

namespace hyqsat::core {

namespace {

/** Bucket edges 0|1|2|...|capacity for the occupancy histogram. */
std::vector<double>
occupancyBounds(int capacity)
{
    std::vector<double> bounds;
    bounds.reserve(static_cast<std::size_t>(std::max(capacity, 1)));
    for (int i = 0; i < std::max(capacity, 1); ++i)
        bounds.push_back(static_cast<double>(i) + 0.5);
    return bounds;
}

} // namespace

SamplePipeline::SamplePipeline(const Frontend &frontend,
                               anneal::Sampler &sampler, Rng &rng,
                               bool use_embedding,
                               MetricsRegistry *metrics)
    : frontend_(frontend), sampler_(sampler), rng_(rng),
      use_embedding_(use_embedding)
{
    if (!metrics) {
        own_metrics_ = std::make_unique<MetricsRegistry>();
        metrics = own_metrics_.get();
    }
    m_submitted_ = metrics->counter("pipeline.submitted");
    m_harvested_ = metrics->counter("pipeline.harvested");
    m_stale_ = metrics->counter("pipeline.stale_discarded");
    m_stalls_ = metrics->counter("pipeline.stalls");
    m_chain_breaks_ = metrics->counter("pipeline.chain_breaks");
    m_frontend_s_ = metrics->timer("pipeline.frontend");
    m_host_sample_s_ = metrics->timer("pipeline.host_sample");
    m_device_s_ = metrics->timer("pipeline.device");
    m_inflight_s_ = metrics->timer("pipeline.inflight");
    m_blocking_s_ = metrics->timer("pipeline.blocking");
    m_stall_span_s_ = metrics->timer("pipeline.stall_span");
    m_occupancy_ = metrics->histogram(
        "pipeline.occupancy", occupancyBounds(sampler.capacity()));
    trace_ = metrics->trace();
}

PipelineStats
SamplePipeline::stats() const
{
    PipelineStats s;
    s.submitted = static_cast<int>(m_submitted_->value());
    s.harvested = static_cast<int>(m_harvested_->value());
    s.stale_discarded = static_cast<int>(m_stale_->value());
    s.stalls = static_cast<int>(m_stalls_->value());
    s.chain_breaks = static_cast<int>(m_chain_breaks_->value());
    s.frontend_s = m_frontend_s_->seconds();
    s.host_sample_s = m_host_sample_s_->seconds();
    s.device_s = m_device_s_->seconds();
    s.inflight_s = m_inflight_s_->seconds();
    s.blocking_s = m_blocking_s_->seconds();
    return s;
}

void
SamplePipeline::refreshCache(const sat::Solver &solver,
                             std::uint64_t epoch)
{
    if (cache_ && cache_epoch_ == epoch)
        return;
    auto fe = std::make_shared<FrontendResult>(
        frontend_.run(solver, rng_, workspace_));
    m_frontend_s_->add(fe->seconds);
    cache_ = std::move(fe);
    cache_epoch_ = epoch;
}

void
SamplePipeline::step(const sat::Solver &solver, std::uint64_t epoch,
                     std::vector<ReadySample> &ready)
{
    refreshCache(solver, epoch);

    if (!cache_->embedded_clauses.empty()) {
        if (static_cast<int>(inflight_.size()) < sampler_.capacity()) {
            // Aliasing shared_ptrs: the request pins the cached
            // frontend result (no deep copy of problem/embedding per
            // submission), and keeps it alive across cache refreshes
            // while the job is in flight.
            anneal::SampleRequest request;
            request.problem = std::shared_ptr<const qubo::EncodedProblem>(
                cache_->embedded, &cache_->embedded->problem);
            request.embedding = std::shared_ptr<const embed::Embedding>(
                cache_->embedded, &cache_->embedded->embedding);
            request.use_embedding = use_embedding_;
            // Hand the sampler the owning embed result too: its
            // CompiledSlot memoizes the compiled sampling form, so a
            // cache hit here also skips the annealer's model rebuild.
            request.embedded = cache_->embedded;
            const std::uint64_t ticket =
                sampler_.submit(std::move(request));
            // The Timer starts after submit() returns so a
            // synchronous backend's compute time does not count as
            // overlap (the loop was blocked, nothing was hidden).
            inflight_.push_back(InFlight{ticket, epoch, cache_, Timer{}});
            m_submitted_->add();
            if (in_stall_) {
                // The stall span ends at the submit that got through.
                in_stall_ = false;
                const double span = stall_timer_.seconds();
                m_stall_span_s_->add(span);
                if (trace_) {
                    trace_->event(
                        "pipeline.stall_end",
                        {{"span_s", span},
                         {"epoch", static_cast<double>(epoch)}});
                }
            }
        } else {
            m_stalls_->add();
            if (!in_stall_) {
                in_stall_ = true;
                stall_timer_.reset();
                if (trace_) {
                    trace_->event(
                        "pipeline.stall_begin",
                        {{"epoch", static_cast<double>(epoch)},
                         {"inflight", static_cast<double>(
                                          inflight_.size())}});
                }
            }
        }
    }
    m_occupancy_->record(static_cast<double>(inflight_.size()));

    harvest(epoch, &ready);
}

void
SamplePipeline::notifyConflict(std::uint64_t epoch)
{
    if (inflight_.empty())
        return;
    harvest(epoch, nullptr);
}

void
SamplePipeline::harvest(std::uint64_t epoch,
                        std::vector<ReadySample> *ready)
{
    std::vector<anneal::SampleCompletion> done;
    sampler_.poll(done);
    for (auto &completion : done) {
        const auto it = std::find_if(
            inflight_.begin(), inflight_.end(), [&](const InFlight &f) {
                return f.ticket == completion.ticket;
            });
        if (it == inflight_.end())
            continue; // not ours (cannot happen with one pipeline)

        const double wall = it->since_submit.seconds();
        const double device_s = completion.sample.device_time_us * 1e-6;
        m_harvested_->add();
        m_inflight_s_->add(wall);
        m_blocking_s_->add(std::max(0.0, device_s - wall));
        m_device_s_->add(device_s);
        m_host_sample_s_->add(completion.host_seconds);
        if (completion.sample.chain_breaks > 0) {
            m_chain_breaks_->add(static_cast<std::uint64_t>(
                completion.sample.chain_breaks));
        }

        if (it->epoch != epoch || ready == nullptr) {
            m_stale_->add();
        } else {
            ready->push_back(ReadySample{
                it->frontend, std::move(completion.sample)});
        }
        inflight_.erase(it);
    }
}

} // namespace hyqsat::core
