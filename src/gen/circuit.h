/**
 * @file
 * Gate-level combinational circuit builder with Tseitin CNF
 * encoding. Substrate for three of the paper's benchmark domains:
 * circuit fault analysis (stuck-at miters), integer factorization
 * (multiplier circuits) and cryptography (adder/comparator
 * equivalence).
 *
 * All gates are at most 2-input, so every Tseitin clause has at most
 * three literals and the encoded formulas are native 3-SAT.
 */

#ifndef HYQSAT_GEN_CIRCUIT_H
#define HYQSAT_GEN_CIRCUIT_H

#include <vector>

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::gen {

/** Kinds of circuit nodes. */
enum class GateKind
{
    Input,
    Const,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
};

/** One node of the circuit DAG. */
struct Gate
{
    GateKind kind = GateKind::Input;
    int a = -1;         ///< first fan-in wire (unused for Input/Const)
    int b = -1;         ///< second fan-in wire (unused for Not)
    bool value = false; ///< constant value (Const only)
};

/** A combinational circuit as an append-only DAG of wires. */
class Circuit
{
  public:
    /** @return a fresh primary-input wire. */
    int addInput();

    /** @return a constant wire. */
    int addConst(bool value);

    int addNot(int a);
    int addAnd(int a, int b);
    int addOr(int a, int b);
    int addXor(int a, int b);
    int addNand(int a, int b);
    int addNor(int a, int b);

    /** Mark a wire as a primary output. */
    void markOutput(int wire) { outputs_.push_back(wire); }

    int numWires() const { return static_cast<int>(gates_.size()); }
    int numInputs() const { return static_cast<int>(inputs_.size()); }
    const std::vector<int> &inputs() const { return inputs_; }
    const std::vector<int> &outputs() const { return outputs_; }
    const Gate &gate(int wire) const { return gates_[wire]; }

    /** Evaluate every wire for the given primary-input values. */
    std::vector<bool> eval(const std::vector<bool> &input_values) const;

    /** Tseitin encoding result. */
    struct Encoding
    {
        sat::Cnf cnf;
        /** Wire index -> CNF variable. */
        std::vector<sat::Var> wire_var;
    };

    /**
     * Tseitin-encode the whole circuit. Every wire gets one CNF
     * variable constrained to its gate function; inputs are free.
     */
    Encoding tseitin() const;

    // ------------------------------------------------------------------
    // Arithmetic building blocks
    // ------------------------------------------------------------------

    /** Full adder: returns {sum, carry_out}. */
    std::pair<int, int> fullAdder(int a, int b, int carry_in);

    /**
     * Ripple-carry adder over little-endian bit vectors (equal
     * width); returns sum bits plus the final carry appended.
     */
    std::vector<int> rippleCarryAdder(const std::vector<int> &a,
                                      const std::vector<int> &b);

    /**
     * Array multiplier over little-endian bit vectors; returns
     * product bits of width |a| + |b|.
     */
    std::vector<int> multiplier(const std::vector<int> &a,
                                const std::vector<int> &b);

    /** Unsigned a >= b comparator over equal-width vectors. */
    int greaterEqual(const std::vector<int> &a,
                     const std::vector<int> &b);

  private:
    int push(GateKind kind, int a = -1, int b = -1, bool value = false);

    std::vector<Gate> gates_;
    std::vector<int> inputs_;
    std::vector<int> outputs_;
};

/**
 * Random 2-input combinational circuit: @p num_inputs inputs,
 * @p num_gates random gates over earlier wires, last few wires
 * marked as outputs.
 */
Circuit randomCircuit(int num_inputs, int num_gates, int num_outputs,
                      Rng &rng);

/**
 * Miter of @p circuit against a copy with wire @p fault_wire stuck
 * at @p stuck_value: the CNF asserts that some output differs.
 * Satisfiable iff the fault is detectable; with fault_wire = -1 the
 * copy is fault-free and the miter is unsatisfiable (the CFA
 * benchmark's unsatisfiable shape).
 */
sat::Cnf faultMiter(const Circuit &circuit, int fault_wire,
                    bool stuck_value);

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_CIRCUIT_H
