#include "gen/planning.h"

#include "util/logging.h"

namespace hyqsat::gen {

using sat::Cnf;
using sat::LitVec;
using sat::mkLit;
using sat::Var;

BlocksWorldTask
randomBlocksWorld(int num_blocks, Rng &rng)
{
    BlocksWorldTask task;
    task.num_blocks = num_blocks;

    auto random_config = [&]() {
        // Build random stacks by inserting blocks in random order
        // either on the table or on a current stack top.
        std::vector<int> under(num_blocks, -1);
        std::vector<int> tops;
        std::vector<int> order(num_blocks);
        for (int i = 0; i < num_blocks; ++i)
            order[i] = i;
        rng.shuffle(order);
        for (int b : order) {
            if (!tops.empty() && rng.chance(0.6)) {
                const std::size_t pick = rng.below(tops.size());
                under[b] = tops[pick];
                tops[pick] = b;
            } else {
                tops.push_back(b);
            }
        }
        return under;
    };
    task.initial_under = random_config();
    task.goal_under = random_config();
    return task;
}

Cnf
encodeBlocksWorld(const BlocksWorldTask &task, int horizon)
{
    const int b = task.num_blocks;
    const int places = b + 1; // blocks plus the table (index b)
    const int steps = horizon + 1;

    // on(x, y, t): block x sits on place y at time t (y != x).
    Cnf cnf(b * places * steps);
    auto on = [&](int x, int y, int t) -> Var {
        return (x * places + y) * steps + t;
    };

    for (int t = 0; t < steps; ++t) {
        for (int x = 0; x < b; ++x) {
            // Each block is somewhere (at least one position)...
            LitVec somewhere;
            for (int y = 0; y < places; ++y)
                if (y != x)
                    somewhere.push_back(mkLit(on(x, y, t)));
            cnf.addClause(somewhere);
            // ... and in at most one position.
            for (int y1 = 0; y1 < places; ++y1) {
                if (y1 == x)
                    continue;
                for (int y2 = y1 + 1; y2 < places; ++y2) {
                    if (y2 == x)
                        continue;
                    cnf.addClause(mkLit(on(x, y1, t), true),
                                  mkLit(on(x, y2, t), true));
                }
            }
        }
        // A block carries at most one block (the table is unbounded).
        for (int y = 0; y < b; ++y) {
            for (int x1 = 0; x1 < b; ++x1) {
                if (x1 == y)
                    continue;
                for (int x2 = x1 + 1; x2 < b; ++x2) {
                    if (x2 == y)
                        continue;
                    cnf.addClause(mkLit(on(x1, y, t), true),
                                  mkLit(on(x2, y, t), true));
                }
            }
        }
    }

    // Transitions: moving x from y to z requires x clear at t and z
    // clear at t (when z is a block).
    for (int t = 0; t + 1 < steps; ++t) {
        for (int x = 0; x < b; ++x) {
            for (int y = 0; y < places; ++y) {
                if (y == x)
                    continue;
                for (int z = 0; z < places; ++z) {
                    if (z == x || z == y)
                        continue;
                    // on(x,y,t) & on(x,z,t+1) -> x was clear:
                    // no w on x at t.
                    for (int w = 0; w < b; ++w) {
                        if (w == x)
                            continue;
                        cnf.addClause(mkLit(on(x, y, t), true),
                                      mkLit(on(x, z, t + 1), true),
                                      mkLit(on(w, x, t), true));
                    }
                    // ... and z was clear (z a block): no w on z at t.
                    if (z < b) {
                        for (int w = 0; w < b; ++w) {
                            if (w == z || w == x)
                                continue;
                            cnf.addClause(
                                mkLit(on(x, y, t), true),
                                mkLit(on(x, z, t + 1), true),
                                mkLit(on(w, z, t), true));
                        }
                    }
                }
            }
        }
    }

    // Initial and goal states as units.
    for (int x = 0; x < b; ++x) {
        const int init_y =
            task.initial_under[x] < 0 ? b : task.initial_under[x];
        const int goal_y =
            task.goal_under[x] < 0 ? b : task.goal_under[x];
        cnf.addClause(mkLit(on(x, init_y, 0)));
        cnf.addClause(mkLit(on(x, goal_y, horizon)));
    }
    return cnf;
}

Cnf
blocksWorldCnf(int num_blocks, Rng &rng)
{
    const auto task = randomBlocksWorld(num_blocks, rng);
    return encodeBlocksWorld(task, 2 * num_blocks);
}

} // namespace hyqsat::gen
