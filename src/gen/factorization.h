/**
 * @file
 * Integer-factorization SAT instances (the paper's IF1 "EzFact" and
 * IF2 "Lisa" domains): a multiplier circuit p * q = N is
 * Tseitin-encoded and the output bits are constrained to N.
 * Satisfiable iff N has a factorization of the requested widths with
 * both factors > 1.
 */

#ifndef HYQSAT_GEN_FACTORIZATION_H
#define HYQSAT_GEN_FACTORIZATION_H

#include <cstdint>

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::gen {

/**
 * Encode "find p (width_p bits) and q (width_q bits), both > 1,
 * with p * q == n" as CNF.
 */
sat::Cnf factorizationCnf(std::uint64_t n, int width_p, int width_q);

/**
 * Generate a semiprime factorization instance: draws two random
 * primes of the given bit widths and encodes n = p * q (guaranteed
 * satisfiable).
 */
sat::Cnf randomSemiprimeCnf(int width_p, int width_q, Rng &rng);

/** @return a uniformly random prime with exactly @p bits bits. */
std::uint64_t randomPrime(int bits, Rng &rng);

/** Trial-division primality test (for generator-internal use). */
bool isPrime(std::uint64_t n);

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_FACTORIZATION_H
