/**
 * @file
 * Blocks-world planning instances (the paper's BP domain). A
 * parallel-move blocks-world encoding without explicit action
 * variables: positions per timestep plus move-precondition clauses.
 * The generated instances use a generous horizon, so they are
 * satisfiable and - like SATLIB's bw suite - nearly conflict-free
 * for CDCL.
 */

#ifndef HYQSAT_GEN_PLANNING_H
#define HYQSAT_GEN_PLANNING_H

#include <vector>

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::gen {

/** A blocks-world task: initial and goal configurations. */
struct BlocksWorldTask
{
    int num_blocks = 0;
    /** under[x] = block below x, or -1 for the table. */
    std::vector<int> initial_under;
    std::vector<int> goal_under;
};

/** Random task: random stacks initially and as the goal. */
BlocksWorldTask randomBlocksWorld(int num_blocks, Rng &rng);

/**
 * Encode reaching the goal within @p horizon steps. A horizon of
 * 2 * num_blocks always suffices (unstack everything, rebuild).
 */
sat::Cnf encodeBlocksWorld(const BlocksWorldTask &task, int horizon);

/** Convenience: random task with the always-sufficient horizon. */
sat::Cnf blocksWorldCnf(int num_blocks, Rng &rng);

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_PLANNING_H
