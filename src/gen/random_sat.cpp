#include "gen/random_sat.h"

#include <algorithm>

#include "util/logging.h"

namespace hyqsat::gen {

using sat::Cnf;
using sat::Lit;
using sat::LitVec;
using sat::mkLit;
using sat::Var;

namespace {

LitVec
randomClause(int num_vars, int k, Rng &rng)
{
    LitVec clause;
    while (static_cast<int>(clause.size()) < k) {
        const Var v = static_cast<Var>(rng.below(num_vars));
        bool fresh = true;
        for (Lit p : clause)
            fresh &= (p.var() != v);
        if (fresh)
            clause.push_back(mkLit(v, rng.chance(0.5)));
    }
    return clause;
}

} // namespace

Cnf
uniformRandomKSat(int num_vars, int num_clauses, int k, Rng &rng)
{
    if (k > num_vars)
        fatal("uniformRandomKSat: k=%d exceeds %d variables", k,
              num_vars);
    Cnf cnf(num_vars);
    for (int i = 0; i < num_clauses; ++i)
        cnf.addClause(randomClause(num_vars, k, rng));
    return cnf;
}

Cnf
plantedRandom3Sat(int num_vars, int num_clauses, Rng &rng)
{
    std::vector<bool> hidden(num_vars);
    for (int v = 0; v < num_vars; ++v)
        hidden[v] = rng.chance(0.5);

    Cnf cnf(num_vars);
    while (cnf.numClauses() < num_clauses) {
        const LitVec clause = randomClause(num_vars, 3, rng);
        bool satisfied = false;
        for (Lit p : clause)
            satisfied |= (hidden[p.var()] != p.sign());
        if (satisfied)
            cnf.addClause(clause);
    }
    return cnf;
}

Cnf
randomHornLike(int num_vars, int num_clauses, double horn_fraction,
               Rng &rng)
{
    Cnf cnf(num_vars);
    for (int i = 0; i < num_clauses; ++i) {
        LitVec clause = randomClause(num_vars, 3, rng);
        if (rng.chance(horn_fraction)) {
            // Keep at most one positive literal.
            bool kept_positive = false;
            for (Lit &p : clause) {
                if (!p.sign()) {
                    if (kept_positive)
                        p = ~p;
                    kept_positive = true;
                }
            }
        }
        cnf.addClause(clause);
    }
    return cnf;
}

} // namespace hyqsat::gen
