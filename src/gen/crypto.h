/**
 * @file
 * Cryptography-domain circuit-verification instances (the paper's
 * CRY "Cmpadd" benchmark): adder + comparator properties checked by
 * a miter. The properties hold, so the instances are unsatisfiable
 * and a CDCL solver refutes them quickly - matching the benchmark's
 * tiny iteration counts in Table I.
 */

#ifndef HYQSAT_GEN_CRYPTO_H
#define HYQSAT_GEN_CRYPTO_H

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::gen {

/**
 * "Compare-add" verification instance: asserts that for @p width-bit
 * a and b, NOT (a + b >= a) - i.e. the (true) monotonicity property
 * fails somewhere. Unsatisfiable.
 */
sat::Cnf cmpAddCnf(int width);

/**
 * Adder-equivalence instance: asserts that a ripple-carry adder and
 * a re-built copy disagree on some sum bit. Unsatisfiable.
 */
sat::Cnf adderEquivalenceCnf(int width);

/**
 * A satisfiable variant for testing: asserts a + b == target for a
 * random target, which some (a, b) achieves.
 */
sat::Cnf adderTargetCnf(int width, Rng &rng);

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_CRYPTO_H
