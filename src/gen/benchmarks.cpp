#include "gen/benchmarks.h"

#include "sat/solver.h"

#include "gen/circuit.h"
#include "gen/crypto.h"
#include "gen/factorization.h"
#include "gen/graph_coloring.h"
#include "gen/inductive.h"
#include "gen/planning.h"
#include "gen/random_sat.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hyqsat::gen {

namespace {

std::uint64_t
instanceSeed(std::uint64_t base, const std::string &id, int index)
{
    std::uint64_t h = base ^ 0x9e3779b97f4a7c15ull;
    for (char c : id)
        h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ull;
    h = (h ^ static_cast<std::uint64_t>(index)) * 0x100000001b3ull;
    return h;
}

sat::Cnf
named(sat::Cnf cnf, const std::string &id, int index)
{
    cnf.setName(id + "-" + std::to_string(index));
    return cnf;
}

/**
 * Uniform random 3-SAT maker for the AI (uf) series. Like SATLIB's
 * uf files, instances are filtered to be satisfiable: unsatisfiable
 * draws at the phase transition are rejected and redrawn.
 */
Benchmark
ufSeries(const std::string &id, int n, int m)
{
    Benchmark b;
    b.id = id;
    b.name = "UF" + std::to_string(n) + "-" + std::to_string(m);
    b.domain = "Artificial Intelligence";
    b.default_count = 10;
    b.expected_satisfiable = 1; // filtered like SATLIB uf
    b.make = [id, n, m](int index, std::uint64_t seed) {
        for (int attempt = 0;; ++attempt) {
            Rng rng(instanceSeed(seed, id, index) +
                    0x9e3779b9ull * attempt);
            sat::Cnf cnf = uniformRandom3Sat(n, m, rng);
            sat::Solver filter;
            if (filter.loadCnf(cnf) && filter.solve().isTrue())
                return named(std::move(cnf), id, index);
            if (attempt > 64)
                fatal("ufSeries: no satisfiable draw for %s[%d]",
                      id.c_str(), index);
        }
    };
    return b;
}

Benchmark
gcSeries(const std::string &id, int vertices, int edges)
{
    Benchmark b;
    b.id = id;
    b.name = "Flat" + std::to_string(vertices) + "-" +
             std::to_string(edges);
    b.domain = "Graph Coloring";
    b.default_count = 10;
    b.expected_satisfiable = 1;
    b.make = [id, vertices, edges](int index, std::uint64_t seed) {
        Rng rng(instanceSeed(seed, id, index));
        return named(flatColoringCnf(vertices, edges, 3, rng), id,
                     index);
    };
    return b;
}

std::vector<Benchmark>
buildRegistry()
{
    std::vector<Benchmark> registry;

    // Graph colouring: the flat series shapes of Table I
    // (vertices x 3 colours = #Variable; 360/417/479 edges).
    registry.push_back(gcSeries("GC1", 150, 360));
    registry.push_back(gcSeries("GC2", 175, 417));
    registry.push_back(gcSeries("GC3", 200, 479));

    // Circuit fault analysis: fault-free miters (unsatisfiable,
    // like the ssa CFA files) over random circuits of Table I scale.
    {
        Benchmark b;
        b.id = "CFA";
        b.name = "FaultMiter";
        b.domain = "Circuit Fault Analysis";
        b.default_count = 4;
        b.expected_satisfiable = 0;
        b.make = [](int index, std::uint64_t seed) {
            Rng rng(instanceSeed(seed, "CFA", index));
            const int inputs = 20 + 10 * (index % 4);
            const int gates = 120 + 80 * (index % 4);
            const Circuit c = randomCircuit(inputs, gates, 8, rng);
            return named(
                sat::toThreeSat(faultMiter(c, -1, false)), "CFA",
                index);
        };
        registry.push_back(b);
    }

    // Block planning: easy, conflict-poor satisfiable instances.
    {
        Benchmark b;
        b.id = "BP";
        b.name = "BlocksWorld";
        b.domain = "Block Planning";
        b.default_count = 5;
        b.expected_satisfiable = 1;
        b.make = [](int index, std::uint64_t seed) {
            Rng rng(instanceSeed(seed, "BP", index));
            const int blocks = 3 + index % 5;
            return named(sat::toThreeSat(blocksWorldCnf(blocks, rng)),
                         "BP", index);
        };
        registry.push_back(b);
    }

    // Inductive inference: k-term DNF consistency (satisfiable).
    {
        Benchmark b;
        b.id = "II";
        b.name = "DnfInference";
        b.domain = "Inductive Inference";
        b.default_count = 41;
        b.expected_satisfiable = 1;
        b.make = [](int index, std::uint64_t seed) {
            Rng rng(instanceSeed(seed, "II", index));
            const int features = 8 + index % 6;
            const int terms = 2 + index % 3;
            const int examples = 16 + 2 * (index % 10);
            return named(
                sat::toThreeSat(inductiveInferenceCnf(
                    features, terms, examples, rng)),
                "II", index);
        };
        registry.push_back(b);
    }

    // Integer factorization.
    {
        Benchmark b;
        b.id = "IF1";
        b.name = "EzFact";
        b.domain = "Integer Factorization";
        b.default_count = 30;
        b.expected_satisfiable = 1;
        b.make = [](int index, std::uint64_t seed) {
            Rng rng(instanceSeed(seed, "IF1", index));
            return named(
                sat::toThreeSat(randomSemiprimeCnf(8, 8, rng)), "IF1",
                index);
        };
        registry.push_back(b);
    }
    {
        Benchmark b;
        b.id = "IF2";
        b.name = "Lisa";
        b.domain = "Integer Factorization";
        b.default_count = 14;
        b.expected_satisfiable = 1;
        b.make = [](int index, std::uint64_t seed) {
            Rng rng(instanceSeed(seed, "IF2", index));
            return named(
                sat::toThreeSat(randomSemiprimeCnf(10, 10, rng)),
                "IF2", index);
        };
        registry.push_back(b);
    }

    // Cryptography: adder/comparator verification (unsatisfiable,
    // refuted in a handful of iterations like Cmpadd).
    {
        Benchmark b;
        b.id = "CRY";
        b.name = "Cmpadd";
        b.domain = "Cryptography";
        b.default_count = 5;
        b.expected_satisfiable = 0;
        b.make = [](int index, std::uint64_t seed) {
            (void)seed;
            const int width = 8 + 4 * (index % 5);
            if (index % 2 == 0)
                return named(sat::toThreeSat(cmpAddCnf(width)), "CRY",
                             index);
            return named(sat::toThreeSat(adderEquivalenceCnf(width)),
                         "CRY", index);
        };
        registry.push_back(b);
    }

    // Artificial intelligence: the uf series of Table I.
    registry.push_back(ufSeries("AI1", 150, 645));
    registry.push_back(ufSeries("AI2", 175, 753));
    registry.push_back(ufSeries("AI3", 200, 860));
    registry.push_back(ufSeries("AI4", 225, 960));
    registry.push_back(ufSeries("AI5", 250, 1065));

    return registry;
}

} // namespace

const std::vector<Benchmark> &
BenchmarkSuite::all()
{
    static const std::vector<Benchmark> registry = buildRegistry();
    return registry;
}

const Benchmark &
BenchmarkSuite::byId(const std::string &id)
{
    for (const auto &b : all())
        if (b.id == id)
            return b;
    fatal("unknown benchmark id: %s", id.c_str());
}

std::vector<sat::Cnf>
BenchmarkSuite::instances(const Benchmark &benchmark, int count,
                          std::uint64_t seed)
{
    std::vector<sat::Cnf> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i)
        out.push_back(benchmark.make(i, seed));
    return out;
}

} // namespace hyqsat::gen
