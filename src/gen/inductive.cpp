#include "gen/inductive.h"

#include "util/logging.h"

namespace hyqsat::gen {

using sat::Cnf;
using sat::LitVec;
using sat::mkLit;
using sat::Var;

Cnf
inductiveInferenceCnf(int num_features, int num_terms, int num_examples,
                      Rng &rng)
{
    const int f = num_features;
    const int k = num_terms;

    // Hidden DNF: per term, each feature appears positive / negative
    // / absent with probability 1/4, 1/4, 1/2.
    // 0 = absent, 1 = positive, 2 = negative.
    std::vector<std::vector<int>> hidden(k, std::vector<int>(f, 0));
    for (auto &term : hidden)
        for (auto &lit : term)
            lit = static_cast<int>(rng.below(4)) % 3;

    auto term_covers = [&](const std::vector<int> &term,
                           const std::vector<bool> &x) {
        for (int i = 0; i < f; ++i) {
            if (term[i] == 1 && !x[i])
                return false;
            if (term[i] == 2 && x[i])
                return false;
        }
        return true;
    };

    // Examples with their hidden labels.
    std::vector<std::vector<bool>> examples(num_examples);
    std::vector<bool> labels(num_examples);
    for (int e = 0; e < num_examples; ++e) {
        examples[e].resize(f);
        for (int i = 0; i < f; ++i)
            examples[e][i] = rng.chance(0.5);
        bool label = false;
        for (const auto &term : hidden)
            label |= term_covers(term, examples[e]);
        labels[e] = label;
    }

    // Variables:
    //   p(t, i): feature i appears positively in term t
    //   n(t, i): feature i appears negatively in term t
    //   c(t, e): term t covers positive example e
    int num_positive = 0;
    std::vector<int> positive_index(num_examples, -1);
    for (int e = 0; e < num_examples; ++e)
        if (labels[e])
            positive_index[e] = num_positive++;

    const int pn_vars = 2 * k * f;
    Cnf cnf(pn_vars + k * num_positive);
    auto p = [&](int t, int i) -> Var { return (t * f + i) * 2; };
    auto n = [&](int t, int i) -> Var { return (t * f + i) * 2 + 1; };
    auto c = [&](int t, int pe) -> Var {
        return pn_vars + t * num_positive + pe;
    };

    // A feature cannot be both positive and negative in one term.
    for (int t = 0; t < k; ++t)
        for (int i = 0; i < f; ++i)
            cnf.addClause(mkLit(p(t, i), true), mkLit(n(t, i), true));

    for (int e = 0; e < num_examples; ++e) {
        if (labels[e]) {
            const int pe = positive_index[e];
            // Some term covers the positive example...
            LitVec some;
            for (int t = 0; t < k; ++t)
                some.push_back(mkLit(c(t, pe)));
            cnf.addClause(some);
            // ... and covering forbids conflicting literals.
            for (int t = 0; t < k; ++t) {
                for (int i = 0; i < f; ++i) {
                    if (examples[e][i]) {
                        cnf.addClause(mkLit(c(t, pe), true),
                                      mkLit(n(t, i), true));
                    } else {
                        cnf.addClause(mkLit(c(t, pe), true),
                                      mkLit(p(t, i), true));
                    }
                }
            }
        } else {
            // No term may cover a negative example: each term must
            // contain a literal the example falsifies.
            for (int t = 0; t < k; ++t) {
                LitVec blocked;
                for (int i = 0; i < f; ++i) {
                    if (examples[e][i])
                        blocked.push_back(mkLit(n(t, i)));
                    else
                        blocked.push_back(mkLit(p(t, i)));
                }
                cnf.addClause(blocked);
            }
        }
    }
    return cnf;
}

} // namespace hyqsat::gen
