/**
 * @file
 * The paper's 14-benchmark suite (Table I) as a registry of
 * generators. Instances are synthetic stand-ins for the SATLIB /
 * SAT2002 files (see DESIGN.md): matched domain structure and, where
 * practical, matched scale. Every instance is returned in 3-SAT
 * form (long clauses chain-split), ready for both the CDCL solver
 * and the annealer frontend.
 */

#ifndef HYQSAT_GEN_BENCHMARKS_H
#define HYQSAT_GEN_BENCHMARKS_H

#include <functional>
#include <string>
#include <vector>

#include "sat/cnf.h"

namespace hyqsat::gen {

/** One registered benchmark family. */
struct Benchmark
{
    std::string id;     ///< e.g. "AI3"
    std::string name;   ///< e.g. "UF200-860"
    std::string domain; ///< e.g. "Artificial Intelligence"

    /** Instances evaluated in Table I (#Problem column). */
    int default_count = 10;

    /** Known satisfiability (for validation): 1 sat, 0 unsat, -1 mixed. */
    int expected_satisfiable = -1;

    /** Generate instance @p index with the given base seed. */
    std::function<sat::Cnf(int index, std::uint64_t seed)> make;
};

/** Registry of the paper's 14 benchmarks. */
class BenchmarkSuite
{
  public:
    /** All 14 benchmarks in Table I order. */
    static const std::vector<Benchmark> &all();

    /** Look up one benchmark by id; fatal() if unknown. */
    static const Benchmark &byId(const std::string &id);

    /** Generate @p count instances of a benchmark. */
    static std::vector<sat::Cnf>
    instances(const Benchmark &benchmark, int count,
              std::uint64_t seed = 0xbe9c5eed);
};

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_BENCHMARKS_H
