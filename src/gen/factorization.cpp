#include "gen/factorization.h"

#include "gen/circuit.h"
#include "util/logging.h"

namespace hyqsat::gen {

using sat::mkLit;

bool
isPrime(std::uint64_t n)
{
    if (n < 2)
        return false;
    if (n % 2 == 0)
        return n == 2;
    for (std::uint64_t d = 3; d * d <= n; d += 2)
        if (n % d == 0)
            return false;
    return true;
}

std::uint64_t
randomPrime(int bits, Rng &rng)
{
    if (bits < 2 || bits > 32)
        fatal("randomPrime supports 2..32 bits (got %d)", bits);
    const std::uint64_t lo = 1ull << (bits - 1);
    const std::uint64_t hi = (1ull << bits) - 1;
    for (int tries = 0; tries < 100000; ++tries) {
        const std::uint64_t candidate =
            lo + rng.below(hi - lo + 1);
        if (isPrime(candidate))
            return candidate;
    }
    fatal("randomPrime: no prime found with %d bits", bits);
}

sat::Cnf
factorizationCnf(std::uint64_t n, int width_p, int width_q)
{
    Circuit circuit;
    std::vector<int> p_bits, q_bits;
    for (int i = 0; i < width_p; ++i)
        p_bits.push_back(circuit.addInput());
    for (int i = 0; i < width_q; ++i)
        q_bits.push_back(circuit.addInput());

    const auto product = circuit.multiplier(p_bits, q_bits);
    auto enc = circuit.tseitin();
    auto &cnf = enc.cnf;

    // Output bits must equal n.
    for (std::size_t i = 0; i < product.size(); ++i) {
        const bool bit = (n >> i) & 1;
        cnf.addClause(mkLit(enc.wire_var[product[i]], !bit));
    }
    if (product.size() < 64 && (n >> product.size()) != 0)
        fatal("factorizationCnf: n does not fit the product width");

    // Exclude the trivial factors p <= 1 and q <= 1: some bit above
    // bit 0 must be set.
    sat::LitVec p_nontrivial, q_nontrivial;
    for (int i = 1; i < width_p; ++i)
        p_nontrivial.push_back(mkLit(enc.wire_var[p_bits[i]]));
    for (int i = 1; i < width_q; ++i)
        q_nontrivial.push_back(mkLit(enc.wire_var[q_bits[i]]));
    cnf.addClause(p_nontrivial);
    cnf.addClause(q_nontrivial);
    return cnf;
}

sat::Cnf
randomSemiprimeCnf(int width_p, int width_q, Rng &rng)
{
    const std::uint64_t p = randomPrime(width_p, rng);
    const std::uint64_t q = randomPrime(width_q, rng);
    return factorizationCnf(p * q, width_p, width_q);
}

} // namespace hyqsat::gen
