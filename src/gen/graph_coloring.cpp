#include "gen/graph_coloring.h"

#include <unordered_set>

#include "util/logging.h"

namespace hyqsat::gen {

using sat::Cnf;
using sat::mkLit;
using sat::Var;

ColoringInstance
flatGraph(int vertices, int num_edges, int colors, Rng &rng)
{
    if (colors < 2)
        fatal("flatGraph needs at least two colours");
    ColoringInstance instance;
    instance.vertices = vertices;
    instance.colors = colors;
    instance.hidden_coloring.resize(vertices);
    for (int v = 0; v < vertices; ++v)
        instance.hidden_coloring[v] = v % colors; // balanced classes
    rng.shuffle(instance.hidden_coloring);

    std::unordered_set<std::uint64_t> seen;
    int guard = 0;
    while (static_cast<int>(instance.edges.size()) < num_edges) {
        if (++guard > 100 * num_edges)
            fatal("flatGraph: cannot place %d cross-class edges",
                  num_edges);
        int a = static_cast<int>(rng.below(vertices));
        int b = static_cast<int>(rng.below(vertices));
        if (a == b ||
            instance.hidden_coloring[a] == instance.hidden_coloring[b])
            continue;
        if (a > b)
            std::swap(a, b);
        const auto key = (static_cast<std::uint64_t>(a) << 32) |
                         static_cast<std::uint32_t>(b);
        if (seen.insert(key).second)
            instance.edges.emplace_back(a, b);
    }
    return instance;
}

Cnf
encodeColoring(const ColoringInstance &instance)
{
    const int k = instance.colors;
    Cnf cnf(instance.vertices * k);
    auto var = [&](int vertex, int color) -> Var {
        return vertex * k + color;
    };

    for (int v = 0; v < instance.vertices; ++v) {
        // At least one colour.
        sat::LitVec alo;
        for (int c = 0; c < k; ++c)
            alo.push_back(mkLit(var(v, c)));
        cnf.addClause(alo);
        // At most one colour (pairwise).
        for (int c1 = 0; c1 < k; ++c1)
            for (int c2 = c1 + 1; c2 < k; ++c2)
                cnf.addClause(mkLit(var(v, c1), true),
                              mkLit(var(v, c2), true));
    }
    for (const auto &[a, b] : instance.edges) {
        for (int c = 0; c < k; ++c)
            cnf.addClause(mkLit(var(a, c), true),
                          mkLit(var(b, c), true));
    }
    return cnf;
}

Cnf
flatColoringCnf(int vertices, int num_edges, int colors, Rng &rng)
{
    return encodeColoring(flatGraph(vertices, num_edges, colors, rng));
}

} // namespace hyqsat::gen
