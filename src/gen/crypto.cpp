#include "gen/crypto.h"

#include "gen/circuit.h"
#include "util/logging.h"

namespace hyqsat::gen {

using sat::mkLit;

sat::Cnf
cmpAddCnf(int width)
{
    // a + b (with the carry kept) is always >= a for unsigned
    // operands; assert the comparator output low => UNSAT.
    Circuit circuit;
    std::vector<int> a, b;
    for (int i = 0; i < width; ++i)
        a.push_back(circuit.addInput());
    for (int i = 0; i < width; ++i)
        b.push_back(circuit.addInput());

    auto sum = circuit.rippleCarryAdder(a, b); // width + 1 bits
    std::vector<int> a_ext = a;
    a_ext.push_back(circuit.addConst(false));
    const int ge = circuit.greaterEqual(sum, a_ext);
    circuit.markOutput(ge);

    auto enc = circuit.tseitin();
    enc.cnf.addClause(mkLit(enc.wire_var[ge], true));
    return enc.cnf;
}

sat::Cnf
adderEquivalenceCnf(int width)
{
    Circuit circuit;
    std::vector<int> a, b;
    for (int i = 0; i < width; ++i)
        a.push_back(circuit.addInput());
    for (int i = 0; i < width; ++i)
        b.push_back(circuit.addInput());

    const auto sum1 = circuit.rippleCarryAdder(a, b);
    const auto sum2 = circuit.rippleCarryAdder(b, a); // commuted twin

    int any_diff = circuit.addConst(false);
    for (std::size_t i = 0; i < sum1.size(); ++i)
        any_diff =
            circuit.addOr(any_diff, circuit.addXor(sum1[i], sum2[i]));
    circuit.markOutput(any_diff);

    auto enc = circuit.tseitin();
    enc.cnf.addClause(mkLit(enc.wire_var[any_diff]));
    return enc.cnf;
}

sat::Cnf
adderTargetCnf(int width, Rng &rng)
{
    Circuit circuit;
    std::vector<int> a, b;
    for (int i = 0; i < width; ++i)
        a.push_back(circuit.addInput());
    for (int i = 0; i < width; ++i)
        b.push_back(circuit.addInput());
    const auto sum = circuit.rippleCarryAdder(a, b);

    // Reachable target: sum of two random width-bit values.
    const std::uint64_t target = rng.below(1ull << width) +
                                 rng.below(1ull << width);
    auto enc = circuit.tseitin();
    for (std::size_t i = 0; i < sum.size(); ++i) {
        const bool bit = (target >> i) & 1;
        enc.cnf.addClause(mkLit(enc.wire_var[sum[i]], !bit));
    }
    return enc.cnf;
}

} // namespace hyqsat::gen
