#include "gen/circuit.h"

#include <algorithm>

#include "util/logging.h"

namespace hyqsat::gen {

using sat::Cnf;
using sat::Lit;
using sat::mkLit;
using sat::Var;

int
Circuit::push(GateKind kind, int a, int b, bool value)
{
    const int wire = numWires();
    if (a >= wire || b >= wire)
        panic("circuit wires must reference earlier wires");
    gates_.push_back({kind, a, b, value});
    return wire;
}

int
Circuit::addInput()
{
    const int wire = push(GateKind::Input);
    inputs_.push_back(wire);
    return wire;
}

int
Circuit::addConst(bool value)
{
    return push(GateKind::Const, -1, -1, value);
}

int
Circuit::addNot(int a)
{
    return push(GateKind::Not, a);
}

int
Circuit::addAnd(int a, int b)
{
    return push(GateKind::And, a, b);
}

int
Circuit::addOr(int a, int b)
{
    return push(GateKind::Or, a, b);
}

int
Circuit::addXor(int a, int b)
{
    return push(GateKind::Xor, a, b);
}

int
Circuit::addNand(int a, int b)
{
    return push(GateKind::Nand, a, b);
}

int
Circuit::addNor(int a, int b)
{
    return push(GateKind::Nor, a, b);
}

std::vector<bool>
Circuit::eval(const std::vector<bool> &input_values) const
{
    if (static_cast<int>(input_values.size()) != numInputs())
        fatal("Circuit::eval: expected %d inputs, got %zu", numInputs(),
              input_values.size());
    std::vector<bool> value(numWires(), false);
    std::size_t next_input = 0;
    for (int w = 0; w < numWires(); ++w) {
        const Gate &g = gates_[w];
        switch (g.kind) {
          case GateKind::Input:
            value[w] = input_values[next_input++];
            break;
          case GateKind::Const:
            value[w] = g.value;
            break;
          case GateKind::Not:
            value[w] = !value[g.a];
            break;
          case GateKind::And:
            value[w] = value[g.a] && value[g.b];
            break;
          case GateKind::Or:
            value[w] = value[g.a] || value[g.b];
            break;
          case GateKind::Xor:
            value[w] = value[g.a] != value[g.b];
            break;
          case GateKind::Nand:
            value[w] = !(value[g.a] && value[g.b]);
            break;
          case GateKind::Nor:
            value[w] = !(value[g.a] || value[g.b]);
            break;
        }
    }
    return value;
}

Circuit::Encoding
Circuit::tseitin() const
{
    Encoding enc;
    enc.cnf = Cnf(numWires());
    enc.wire_var.resize(numWires());
    for (int w = 0; w < numWires(); ++w)
        enc.wire_var[w] = w;

    auto lit = [&](int wire, bool neg = false) {
        return mkLit(enc.wire_var[wire], neg);
    };

    for (int w = 0; w < numWires(); ++w) {
        const Gate &g = gates_[w];
        const Lit y = lit(w);
        switch (g.kind) {
          case GateKind::Input:
            break;
          case GateKind::Const:
            enc.cnf.addClause(g.value ? y : ~y);
            break;
          case GateKind::Not:
            enc.cnf.addClause(y, lit(g.a));
            enc.cnf.addClause(~y, ~lit(g.a));
            break;
          case GateKind::And:
            enc.cnf.addClause(~y, lit(g.a));
            enc.cnf.addClause(~y, lit(g.b));
            enc.cnf.addClause(y, ~lit(g.a), ~lit(g.b));
            break;
          case GateKind::Or:
            enc.cnf.addClause(y, ~lit(g.a));
            enc.cnf.addClause(y, ~lit(g.b));
            enc.cnf.addClause(~y, lit(g.a), lit(g.b));
            break;
          case GateKind::Xor:
            enc.cnf.addClause(~y, lit(g.a), lit(g.b));
            enc.cnf.addClause(~y, ~lit(g.a), ~lit(g.b));
            enc.cnf.addClause(y, ~lit(g.a), lit(g.b));
            enc.cnf.addClause(y, lit(g.a), ~lit(g.b));
            break;
          case GateKind::Nand:
            enc.cnf.addClause(y, lit(g.a));
            enc.cnf.addClause(y, lit(g.b));
            enc.cnf.addClause(~y, ~lit(g.a), ~lit(g.b));
            break;
          case GateKind::Nor:
            enc.cnf.addClause(~y, ~lit(g.a));
            enc.cnf.addClause(~y, ~lit(g.b));
            enc.cnf.addClause(y, lit(g.a), lit(g.b));
            break;
        }
    }
    return enc;
}

std::pair<int, int>
Circuit::fullAdder(int a, int b, int carry_in)
{
    const int axb = addXor(a, b);
    const int sum = addXor(axb, carry_in);
    const int ab = addAnd(a, b);
    const int cab = addAnd(carry_in, axb);
    const int carry = addOr(ab, cab);
    return {sum, carry};
}

std::vector<int>
Circuit::rippleCarryAdder(const std::vector<int> &a,
                          const std::vector<int> &b)
{
    if (a.size() != b.size())
        fatal("rippleCarryAdder: width mismatch (%zu vs %zu)", a.size(),
              b.size());
    std::vector<int> sum;
    int carry = addConst(false);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto [s, c] = fullAdder(a[i], b[i], carry);
        sum.push_back(s);
        carry = c;
    }
    sum.push_back(carry);
    return sum;
}

std::vector<int>
Circuit::multiplier(const std::vector<int> &a, const std::vector<int> &b)
{
    // Shift-and-add array multiplier over partial products.
    const auto wa = a.size(), wb = b.size();
    std::vector<int> product(wa + wb, addConst(false));
    for (std::size_t j = 0; j < wb; ++j) {
        // Partial product row: a << j, gated by b[j].
        int carry = addConst(false);
        for (std::size_t i = 0; i < wa; ++i) {
            const int pp = addAnd(a[i], b[j]);
            const auto [s, c] = fullAdder(product[i + j], pp, carry);
            product[i + j] = s;
            carry = c;
        }
        // Propagate the final carry into the higher bits.
        for (std::size_t k = wa + j; k < wa + wb && carry >= 0; ++k) {
            const int zero = addConst(false);
            const auto [s, c] = fullAdder(product[k], carry, zero);
            product[k] = s;
            carry = c;
        }
    }
    return product;
}

int
Circuit::greaterEqual(const std::vector<int> &a, const std::vector<int> &b)
{
    if (a.size() != b.size())
        fatal("greaterEqual: width mismatch");
    // ge_i = (a_i > b_i) or (a_i == b_i and ge_{i-1}); ge_{-1} = true.
    int ge = addConst(true);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const int gt = addAnd(a[i], addNot(b[i]));
        const int eq = addNot(addXor(a[i], b[i]));
        ge = addOr(gt, addAnd(eq, ge));
    }
    return ge;
}

Circuit
randomCircuit(int num_inputs, int num_gates, int num_outputs, Rng &rng)
{
    Circuit circuit;
    for (int i = 0; i < num_inputs; ++i)
        circuit.addInput();
    for (int i = 0; i < num_gates; ++i) {
        const int n = circuit.numWires();
        const int a = static_cast<int>(rng.below(n));
        const int b = static_cast<int>(rng.below(n));
        switch (rng.below(5)) {
          case 0:
            circuit.addAnd(a, b);
            break;
          case 1:
            circuit.addOr(a, b);
            break;
          case 2:
            circuit.addXor(a, b);
            break;
          case 3:
            circuit.addNand(a, b);
            break;
          default:
            circuit.addNot(a);
            break;
        }
    }
    const int first_output =
        std::max(circuit.numWires() - num_outputs, 0);
    for (int w = first_output; w < circuit.numWires(); ++w)
        circuit.markOutput(w);
    return circuit;
}

sat::Cnf
faultMiter(const Circuit &circuit, int fault_wire, bool stuck_value)
{
    // Build one combined circuit: the original plus a copy sharing
    // its inputs, with the faulted wire replaced by a constant.
    Circuit miter;
    std::vector<int> orig_map(circuit.numWires());
    std::vector<int> copy_map(circuit.numWires());

    for (int w = 0; w < circuit.numWires(); ++w) {
        const Gate &g = circuit.gate(w);
        switch (g.kind) {
          case GateKind::Input:
            orig_map[w] = miter.addInput();
            break;
          case GateKind::Const:
            orig_map[w] = miter.addConst(g.value);
            break;
          case GateKind::Not:
            orig_map[w] = miter.addNot(orig_map[g.a]);
            break;
          case GateKind::And:
            orig_map[w] = miter.addAnd(orig_map[g.a], orig_map[g.b]);
            break;
          case GateKind::Or:
            orig_map[w] = miter.addOr(orig_map[g.a], orig_map[g.b]);
            break;
          case GateKind::Xor:
            orig_map[w] = miter.addXor(orig_map[g.a], orig_map[g.b]);
            break;
          case GateKind::Nand:
            orig_map[w] = miter.addNand(orig_map[g.a], orig_map[g.b]);
            break;
          case GateKind::Nor:
            orig_map[w] = miter.addNor(orig_map[g.a], orig_map[g.b]);
            break;
        }
    }
    for (int w = 0; w < circuit.numWires(); ++w) {
        if (w == fault_wire) {
            copy_map[w] = miter.addConst(stuck_value);
            continue;
        }
        const Gate &g = circuit.gate(w);
        switch (g.kind) {
          case GateKind::Input:
            copy_map[w] = orig_map[w]; // shared primary inputs
            break;
          case GateKind::Const:
            copy_map[w] = miter.addConst(g.value);
            break;
          case GateKind::Not:
            copy_map[w] = miter.addNot(copy_map[g.a]);
            break;
          case GateKind::And:
            copy_map[w] = miter.addAnd(copy_map[g.a], copy_map[g.b]);
            break;
          case GateKind::Or:
            copy_map[w] = miter.addOr(copy_map[g.a], copy_map[g.b]);
            break;
          case GateKind::Xor:
            copy_map[w] = miter.addXor(copy_map[g.a], copy_map[g.b]);
            break;
          case GateKind::Nand:
            copy_map[w] = miter.addNand(copy_map[g.a], copy_map[g.b]);
            break;
          case GateKind::Nor:
            copy_map[w] = miter.addNor(copy_map[g.a], copy_map[g.b]);
            break;
        }
    }

    // Some output must differ.
    int any_diff = miter.addConst(false);
    for (int out : circuit.outputs()) {
        const int diff = miter.addXor(orig_map[out], copy_map[out]);
        any_diff = miter.addOr(any_diff, diff);
    }
    miter.markOutput(any_diff);

    auto enc = miter.tseitin();
    enc.cnf.addClause(mkLit(enc.wire_var[any_diff]));
    return enc.cnf;
}

} // namespace hyqsat::gen
