/**
 * @file
 * Inductive-inference instances (the paper's II domain, after
 * SATLIB's ii series): find a k-term DNF over f Boolean features
 * consistent with a set of labeled examples. Examples are labeled
 * by a hidden DNF, so the instances are satisfiable.
 */

#ifndef HYQSAT_GEN_INDUCTIVE_H
#define HYQSAT_GEN_INDUCTIVE_H

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::gen {

/**
 * Encode the DNF-consistency problem.
 * @param num_features Boolean features per example
 * @param num_terms DNF terms the learner may use
 * @param num_examples labeled examples (drawn uniformly, labeled by
 *        a hidden random DNF with @p num_terms terms)
 */
sat::Cnf inductiveInferenceCnf(int num_features, int num_terms,
                               int num_examples, Rng &rng);

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_INDUCTIVE_H
