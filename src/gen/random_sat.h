/**
 * @file
 * Random 3-SAT instance generators, reproducing the SATLIB "uf"
 * (uniform random at the phase transition) series the paper's AI
 * benchmarks draw from.
 */

#ifndef HYQSAT_GEN_RANDOM_SAT_H
#define HYQSAT_GEN_RANDOM_SAT_H

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::gen {

/**
 * Uniform random k-SAT: each clause draws k distinct variables with
 * random polarity. At ratio m/n ~ 4.26 (k = 3) instances sit at the
 * satisfiability phase transition.
 */
sat::Cnf uniformRandomKSat(int num_vars, int num_clauses, int k,
                           Rng &rng);

/** Uniform random 3-SAT (the paper's AI domain). */
inline sat::Cnf
uniformRandom3Sat(int num_vars, int num_clauses, Rng &rng)
{
    return uniformRandomKSat(num_vars, num_clauses, 3, rng);
}

/**
 * Planted random 3-SAT: like uniform, but every clause is checked to
 * be satisfied by a hidden random assignment, so the instance is
 * guaranteed satisfiable.
 */
sat::Cnf plantedRandom3Sat(int num_vars, int num_clauses, Rng &rng);

/**
 * Random Horn-heavy instance: clauses have at most one positive
 * literal with probability @p horn_fraction. Near-Horn formulas
 * solve with almost no conflicts (the paper's BP/II behaviour).
 */
sat::Cnf randomHornLike(int num_vars, int num_clauses,
                        double horn_fraction, Rng &rng);

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_RANDOM_SAT_H
