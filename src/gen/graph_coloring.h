/**
 * @file
 * Graph-colouring instances reproducing SATLIB's "flat" series
 * (GC1-GC3 in the paper): random k-colourable flat graphs encoded to
 * CNF. A hidden balanced partition guarantees colourability, so the
 * encoded formula is satisfiable like the flatXX benchmarks.
 *
 * Encoding: one variable per (vertex, colour); per vertex an
 * at-least-one clause (k literals) and pairwise at-most-one clauses;
 * per edge and colour a not-both clause. With k = 3 all clauses have
 * at most three literals.
 */

#ifndef HYQSAT_GEN_GRAPH_COLORING_H
#define HYQSAT_GEN_GRAPH_COLORING_H

#include <utility>
#include <vector>

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::gen {

/** A colourable random graph plus its generation metadata. */
struct ColoringInstance
{
    int vertices = 0;
    int colors = 0;
    std::vector<std::pair<int, int>> edges;
    /** The hidden colouring that witnesses satisfiability. */
    std::vector<int> hidden_coloring;
};

/**
 * Generate a random flat (k-colourable, triangle-poor) graph:
 * vertices are split into k balanced classes and @p num_edges edges
 * are drawn uniformly between distinct classes without duplicates.
 */
ColoringInstance flatGraph(int vertices, int num_edges, int colors,
                           Rng &rng);

/** Encode a colouring instance to CNF (see file comment). */
sat::Cnf encodeColoring(const ColoringInstance &instance);

/**
 * Convenience: the paper's GC benchmark shape - e.g. flat(150, 545)
 * gives 450 variables like GC1.
 */
sat::Cnf flatColoringCnf(int vertices, int num_edges, int colors,
                         Rng &rng);

} // namespace hyqsat::gen

#endif // HYQSAT_GEN_GRAPH_COLORING_H
