#include <algorithm>

#include "simplify/passes.h"

namespace hyqsat::simplify {

bool
runEquivalentLiterals(ClauseDb &db, ReconstructionStack &rs,
                      Stats &st)
{
    if (db.contradiction())
        return false;

    const int num_lits = 2 * db.numVars();

    // Binary implication graph: clause {a, b} gives ~a -> b and
    // ~b -> a. The graph is skew-symmetric, so the SCC containing ~p
    // is the literal-wise negation of the SCC containing p — which
    // makes min-literal representatives automatically consistent
    // across polarities.
    std::vector<std::vector<int>> adj(
        static_cast<std::size_t>(num_lits));
    bool any_binary = false;
    for (int ci = 0; ci < db.numClauses(); ++ci) {
        if (!db.live(ci))
            continue;
        const auto &lits = db.clause(ci).lits;
        if (lits.size() != 2)
            continue;
        adj[static_cast<std::size_t>((~lits[0]).x)].push_back(
            lits[1].x);
        adj[static_cast<std::size_t>((~lits[1]).x)].push_back(
            lits[0].x);
        any_binary = true;
    }
    if (!any_binary)
        return true;

    // Iterative Tarjan over the literal nodes.
    constexpr int kUndef = -1;
    std::vector<int> index(static_cast<std::size_t>(num_lits),
                           kUndef);
    std::vector<int> low(static_cast<std::size_t>(num_lits), 0);
    std::vector<int> rep(static_cast<std::size_t>(num_lits));
    for (int l = 0; l < num_lits; ++l)
        rep[static_cast<std::size_t>(l)] = l;
    std::vector<char> onstack(static_cast<std::size_t>(num_lits), 0);
    std::vector<int> stack;
    std::vector<int> scc;
    int next_index = 0;

    struct Frame
    {
        int node;
        std::size_t child;
    };
    std::vector<Frame> frames;

    for (int root = 0; root < num_lits; ++root) {
        if (index[static_cast<std::size_t>(root)] != kUndef)
            continue;
        frames.push_back({root, 0});
        index[static_cast<std::size_t>(root)] =
            low[static_cast<std::size_t>(root)] = next_index++;
        stack.push_back(root);
        onstack[static_cast<std::size_t>(root)] = 1;

        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto &edges = adj[static_cast<std::size_t>(f.node)];
            if (f.child < edges.size()) {
                const int w = edges[f.child++];
                if (index[static_cast<std::size_t>(w)] == kUndef) {
                    index[static_cast<std::size_t>(w)] =
                        low[static_cast<std::size_t>(w)] =
                            next_index++;
                    stack.push_back(w);
                    onstack[static_cast<std::size_t>(w)] = 1;
                    frames.push_back({w, 0});
                } else if (onstack[static_cast<std::size_t>(w)]) {
                    low[static_cast<std::size_t>(f.node)] = std::min(
                        low[static_cast<std::size_t>(f.node)],
                        index[static_cast<std::size_t>(w)]);
                }
                continue;
            }
            const int v = f.node;
            frames.pop_back();
            if (!frames.empty()) {
                const int parent = frames.back().node;
                low[static_cast<std::size_t>(parent)] = std::min(
                    low[static_cast<std::size_t>(parent)],
                    low[static_cast<std::size_t>(v)]);
            }
            if (low[static_cast<std::size_t>(v)] !=
                index[static_cast<std::size_t>(v)]) {
                continue;
            }
            // v is an SCC root: pop its members.
            scc.clear();
            int w;
            do {
                w = stack.back();
                stack.pop_back();
                onstack[static_cast<std::size_t>(w)] = 0;
                scc.push_back(w);
            } while (w != v);
            if (scc.size() < 2)
                continue;
            std::sort(scc.begin(), scc.end());
            for (std::size_t i = 0; i + 1 < scc.size(); ++i) {
                if ((scc[i] >> 1) == (scc[i + 1] >> 1)) {
                    // p and ~p equivalent: the formula is UNSAT.
                    db.setContradiction();
                    return false;
                }
            }
            // Representative: the smallest literal, preferring a
            // frozen variable's literal so frozen members are never
            // the ones substituted away. scc is sorted ascending, so
            // the first frozen entry is the smallest frozen one.
            // Skew-symmetry keeps the choice consistent with the
            // mirror SCC: frozen-ness is a per-variable property and
            // negation only flips the sign bit, so the mirror's scan
            // picks exactly the negation of this representative.
            int r = scc[0];
            for (int m : scc) {
                if (db.isFrozen(static_cast<sat::Var>(m >> 1))) {
                    r = m;
                    break;
                }
            }
            for (int m : scc) {
                const auto mv = static_cast<sat::Var>(m >> 1);
                // Frozen non-representatives keep mapping to
                // themselves: their binary equivalence clauses stay
                // in the formula instead of being substituted out.
                rep[static_cast<std::size_t>(m)] =
                    (db.isFrozen(mv) && m != r) ? m : r;
            }
        }
    }

    // Substitute every non-representative variable away.
    bool any_sub = false;
    for (sat::Var v = 0; v < db.numVars(); ++v) {
        const int px = 2 * v;
        if (rep[static_cast<std::size_t>(px)] == px)
            continue;
        if (!db.varActive(v))
            continue;
        sat::Lit p = sat::mkLit(v, false);
        sat::Lit q;
        q.x = rep[static_cast<std::size_t>(px)];
        rs.pushEquivalence(p, q);
        db.noteSubstitution(v, q);
        db.markRemoved(v);
        ++st.equivalences;
        any_sub = true;
    }
    if (!any_sub)
        return true;

    const int n = db.numClauses(); // rewrites append fresh clauses
    for (int ci = 0; ci < n && !db.contradiction(); ++ci) {
        if (!db.live(ci))
            continue;
        bool mapped = false;
        for (sat::Lit l : db.clause(ci).lits) {
            if (rep[static_cast<std::size_t>(l.x)] != l.x) {
                mapped = true;
                break;
            }
        }
        if (!mapped)
            continue;
        sat::LitVec out = db.clause(ci).lits; // copy before realloc
        for (sat::Lit &l : out)
            l.x = rep[static_cast<std::size_t>(l.x)];
        db.killClause(ci);
        db.addClause(std::move(out));
    }
    return !db.contradiction();
}

} // namespace hyqsat::simplify
