#include <algorithm>

#include "simplify/passes.h"

namespace hyqsat::simplify {

namespace {

/** Is @p small a subset of @p big (both sorted)? */
bool
subset(const sat::LitVec &small, const sat::LitVec &big)
{
    std::size_t j = 0;
    for (sat::Lit p : small) {
        while (j < big.size() && big[j] < p)
            ++j;
        if (j == big.size() || !(big[j] == p))
            return false;
        ++j;
    }
    return true;
}

/**
 * Self-subsumption test: does @p c with literal @p l flipped subsume
 * @p d? I.e. ~l in d and every other literal of c in d.
 */
bool
subsetFlipped(const sat::LitVec &c, const sat::LitVec &d, sat::Lit l)
{
    if (!std::binary_search(d.begin(), d.end(), ~l))
        return false;
    for (sat::Lit p : c) {
        if (p == l)
            continue;
        if (!std::binary_search(d.begin(), d.end(), p))
            return false;
    }
    return true;
}

} // namespace

bool
runSubsumption(ClauseDb &db, const Options &opts, Stats &st)
{
    if (db.contradiction())
        return false;

    const int n = db.numClauses(); // no clauses are added below
    for (int ci = 0; ci < n && !db.contradiction(); ++ci) {
        if (!db.live(ci))
            continue;
        const ClauseDb::Clause &c = db.clause(ci);

        // Candidates come from the occurrence lists (both
        // polarities) of the clause's rarest variable; any clause c
        // subsumes or strengthens must contain that variable.
        sat::Var rare = c.lits[0].var();
        int best = -1;
        for (sat::Lit p : c.lits) {
            const int occ = db.occCount(p) + db.occCount(~p);
            if (best < 0 || occ < best) {
                best = occ;
                rare = p.var();
            }
        }
        for (int pol = 0; pol < 2 && !db.contradiction(); ++pol) {
            const sat::Lit rl = sat::mkLit(rare, pol != 0);
            for (int di : db.occurs(rl)) {
                if (di == ci || !db.live(di))
                    continue;
                const ClauseDb::Clause &d = db.clause(di);
                if (d.lits.size() < c.lits.size())
                    continue;
                if ((c.sig & ~d.sig) != 0)
                    continue; // signature filter

                if (opts.subsumption && subset(c.lits, d.lits)) {
                    db.killClause(di);
                    ++st.subsumed;
                    continue;
                }
                if (!opts.self_subsumption)
                    continue;
                // c with one literal flipped subsumes d: resolve,
                // i.e. drop the flipped literal from d.
                for (sat::Lit p : c.lits) {
                    if (!subsetFlipped(c.lits, d.lits, p))
                        continue;
                    db.removeLiteral(di, ~p);
                    ++st.strengthened;
                    break;
                }
                if (db.contradiction())
                    break;
            }
        }
    }
    return !db.contradiction();
}

} // namespace hyqsat::simplify
