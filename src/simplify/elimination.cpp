#include <algorithm>

#include "simplify/passes.h"

namespace hyqsat::simplify {

namespace {

/**
 * Resolve @p a (contains @p p) with @p b (contains ~p) on p.
 * @return false iff the resolvent is a tautology; otherwise @p out
 * holds the sorted, deduplicated resolvent.
 */
bool
resolve(const sat::LitVec &a, const sat::LitVec &b, sat::Lit p,
        sat::LitVec &out)
{
    out.clear();
    for (sat::Lit q : a) {
        if (q != p)
            out.push_back(q);
    }
    for (sat::Lit q : b) {
        if (q != ~p)
            out.push_back(q);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        if (out[i] == ~out[i + 1])
            return false;
    }
    return true;
}

} // namespace

bool
runElimination(ClauseDb &db, ReconstructionStack &rs,
               const Options &opts, Stats &st)
{
    if (db.contradiction())
        return false;

    // Candidates: variables whose neighbourhood changed since the
    // last elimination attempt (everything on the first run — the
    // initial load touches every variable).
    std::vector<sat::Var> candidates = db.takeTouched();
    std::sort(candidates.begin(), candidates.end());

    sat::LitVec tmp;
    for (sat::Var v : candidates) {
        if (!db.varActive(v))
            continue;
        if (db.isFrozen(v))
            continue; // externally visible: must stay in the formula
        const sat::Lit p = sat::mkLit(v, false);
        if (db.occCount(p) > opts.bve_occurrence_limit ||
            db.occCount(~p) > opts.bve_occurrence_limit) {
            continue;
        }
        if (db.occCount(p) == 0 && db.occCount(~p) == 0)
            continue;
        db.compactOccurs(p);
        db.compactOccurs(~p);
        const std::vector<int> pos = db.occurs(p); // copies: the
        const std::vector<int> neg = db.occurs(~p); // lists mutate

        // All non-tautological resolvents, bounded by length and by
        // clause-count growth.
        std::vector<sat::LitVec> resolvents;
        const int limit = static_cast<int>(pos.size() + neg.size()) +
                          opts.bve_clause_growth;
        bool abort = false;
        for (std::size_t i = 0; i < pos.size() && !abort; ++i) {
            for (std::size_t j = 0; j < neg.size(); ++j) {
                if (!resolve(db.clause(pos[i]).lits,
                             db.clause(neg[j]).lits, p, tmp)) {
                    continue;
                }
                if (static_cast<int>(tmp.size()) >
                    opts.max_resolvent_len) {
                    abort = true; // would break the 3-SAT shape
                    break;
                }
                resolvents.push_back(tmp);
                if (static_cast<int>(resolvents.size()) > limit) {
                    abort = true;
                    break;
                }
            }
        }
        if (abort)
            continue;

        // Keep the smaller side on the reconstruction stack
        // (MiniSat pattern): replay defaults v to satisfy the
        // larger, un-stored side and flips only if a stored clause
        // ends up violated.
        const bool keep_pos = pos.size() <= neg.size();
        const sat::Lit kept = keep_pos ? p : ~p;
        std::vector<sat::LitVec> kept_side;
        kept_side.reserve(keep_pos ? pos.size() : neg.size());
        for (int ci : keep_pos ? pos : neg)
            kept_side.push_back(db.clause(ci).lits);
        rs.pushElimination(kept, kept_side);

        for (int ci : pos)
            db.killClause(ci);
        for (int ci : neg)
            db.killClause(ci);
        db.markRemoved(v);
        ++st.eliminated;
        for (auto &r : resolvents) {
            db.addClause(std::move(r));
            if (db.contradiction())
                return false;
        }
    }
    return true;
}

} // namespace hyqsat::simplify
