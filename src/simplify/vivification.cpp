#include "simplify/passes.h"

namespace hyqsat::simplify {

bool
runVivification(ClauseDb &db, const Options &opts, Stats &st)
{
    if (db.contradiction())
        return false;

    Propagator prop(db);
    std::int64_t budget = opts.vivify_budget;
    const int n = db.numClauses();
    for (int ci = 0; ci < n && budget > 0; ++ci) {
        if (!db.live(ci))
            continue;
        if (db.clause(ci).lits.size() < 3)
            continue;
        const sat::LitVec lits = db.clause(ci).lits; // snapshot
        prop.reset();
        for (std::size_t i = 0; i < lits.size(); ++i) {
            const sat::Lit l = lits[i];
            const sat::lbool v = prop.valueOf(l);
            if (v.isTrue()) {
                // The negated prefix implies l: the prefix plus l
                // subsumes the clause, so the tail is redundant.
                for (std::size_t j = i + 1; j < lits.size(); ++j) {
                    db.removeLiteral(ci, lits[j]);
                    ++st.vivified;
                }
                break;
            }
            if (v.isFalse()) {
                // The negated prefix falsifies l: l itself is
                // redundant (the clause minus l is still implied).
                db.removeLiteral(ci, l);
                ++st.vivified;
                continue;
            }
            if (i + 1 == lits.size())
                break; // conflict on the last literal removes nothing
            const sat::lbool r = prop.assume(db, ~l, budget, ci);
            if (r.isFalse()) {
                // Conflict: the negated prefix (including ~l) is
                // contradictory, so the prefix clause is implied.
                for (std::size_t j = i + 1; j < lits.size(); ++j) {
                    db.removeLiteral(ci, lits[j]);
                    ++st.vivified;
                }
                break;
            }
            if (r.isUndef())
                break; // budget exhausted: no conclusion
        }
        if (db.contradiction())
            return false;
    }
    return true;
}

} // namespace hyqsat::simplify
