#include "simplify/reconstruction.h"

#include "util/logging.h"

namespace hyqsat::simplify {

void
ReconstructionStack::push(sat::Lit witness, const sat::LitVec &clause)
{
    const int begin = static_cast<int>(lits_.size());
    lits_.push_back(witness);
    bool found = false;
    for (sat::Lit p : clause) {
        if (p == witness) {
            found = true;
            continue;
        }
        lits_.push_back(p);
    }
    if (!found)
        panic("reconstruction witness missing from its clause");
    entries_.push_back({begin, static_cast<int>(lits_.size())});
}

void
ReconstructionStack::pushElimination(
    sat::Lit kept, const std::vector<sat::LitVec> &kept_side)
{
    for (const sat::LitVec &clause : kept_side)
        push(kept, clause);
    pushUnit(~kept);
}

void
ReconstructionStack::pushEquivalence(sat::Lit p, sat::Lit q)
{
    push(p, sat::LitVec{p, ~q});
    push(~p, sat::LitVec{~p, q});
}

void
ReconstructionStack::extend(std::vector<bool> &model) const
{
    const auto holds = [&](sat::Lit p) {
        const auto v = static_cast<std::size_t>(p.var());
        if (v >= model.size())
            return p.sign(); // absent variables read as false
        return model[v] != p.sign();
    };
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        bool satisfied = false;
        for (int i = it->begin; i < it->end && !satisfied; ++i)
            satisfied = holds(lits_[i]);
        if (satisfied)
            continue;
        const sat::Lit witness = lits_[static_cast<std::size_t>(it->begin)];
        const auto v = static_cast<std::size_t>(witness.var());
        if (v >= model.size())
            model.resize(v + 1, false);
        model[v] = !witness.sign();
    }
}

} // namespace hyqsat::simplify
