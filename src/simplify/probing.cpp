#include "simplify/passes.h"

namespace hyqsat::simplify {

bool
runProbing(ClauseDb &db, const Options &opts, Stats &st)
{
    if (db.contradiction())
        return false;

    Propagator prop(db);
    std::int64_t budget = opts.probe_budget;
    for (sat::Var v = 0; v < db.numVars() && budget > 0; ++v) {
        if (!db.varActive(v))
            continue;
        const sat::Lit p = sat::mkLit(v, false);
        if (db.occCount(p) == 0 && db.occCount(~p) == 0)
            continue;

        prop.reset();
        const sat::lbool rp = prop.assume(db, p, budget);
        prop.reset();
        const sat::lbool rn = prop.assume(db, ~p, budget);
        prop.reset();

        // A budget-exhausted probe (l_Undef) proves nothing.
        if (rp.isFalse() && rn.isFalse()) {
            db.setContradiction();
            return false;
        }
        if (rp.isFalse()) {
            db.unitQueue().push_back(~p);
            ++st.failed_literals;
        } else if (rn.isFalse()) {
            db.unitQueue().push_back(p);
            ++st.failed_literals;
        }
    }
    return true;
}

} // namespace hyqsat::simplify
