#include "simplify/clause_db.h"

#include <algorithm>

#include "util/logging.h"

namespace hyqsat::simplify {

namespace {

std::uint64_t
signature(const sat::LitVec &clause)
{
    std::uint64_t sig = 0;
    for (sat::Lit p : clause)
        sig |= 1ull << (p.var() & 63);
    return sig;
}

} // namespace

ClauseDb::ClauseDb(const sat::Cnf &cnf)
    : num_vars_(cnf.numVars()),
      occurs_(static_cast<std::size_t>(2 * cnf.numVars())),
      occ_count_(static_cast<std::size_t>(2 * cnf.numVars()), 0),
      value_(static_cast<std::size_t>(cnf.numVars()), sat::l_Undef),
      removed_(static_cast<std::size_t>(cnf.numVars()), 0),
      frozen_(static_cast<std::size_t>(cnf.numVars()), 0),
      substitution_(static_cast<std::size_t>(cnf.numVars()),
                    sat::lit_Undef),
      touched_flag_(static_cast<std::size_t>(cnf.numVars()), 0)
{
    clauses_.reserve(cnf.clauses().size());
    for (const auto &raw : cnf.clauses()) {
        if (addClause(raw) < 0)
            ++tautologies_at_load_;
        if (contradiction_)
            return;
    }
}

int
ClauseDb::addClause(sat::LitVec lits)
{
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
        if (lits[i] == ~lits[i + 1])
            return -1; // tautology
    }
    if (lits.empty()) {
        contradiction_ = true;
        return -1;
    }
    const int idx = static_cast<int>(clauses_.size());
    for (sat::Lit p : lits) {
        occurs_[static_cast<std::size_t>(p.x)].push_back(idx);
        ++occ_count_[static_cast<std::size_t>(p.x)];
        touchVar(p.var());
    }
    if (lits.size() == 1)
        unit_queue_.push_back(lits[0]);
    Clause c;
    c.sig = signature(lits);
    c.lits = std::move(lits);
    clauses_.push_back(std::move(c));
    return idx;
}

void
ClauseDb::killClause(int ci)
{
    Clause &c = clauses_[static_cast<std::size_t>(ci)];
    if (c.dead)
        return;
    c.dead = true;
    for (sat::Lit p : c.lits) {
        --occ_count_[static_cast<std::size_t>(p.x)];
        touchVar(p.var());
    }
}

void
ClauseDb::removeLiteral(int ci, sat::Lit p)
{
    Clause &c = clauses_[static_cast<std::size_t>(ci)];
    const auto it = std::find(c.lits.begin(), c.lits.end(), p);
    if (it == c.lits.end())
        panic("removeLiteral: literal not in clause");
    c.lits.erase(it);
    c.sig = signature(c.lits);
    --occ_count_[static_cast<std::size_t>(p.x)];
    touchVar(p.var());
    if (c.lits.empty()) {
        contradiction_ = true;
        return;
    }
    if (c.lits.size() == 1)
        unit_queue_.push_back(c.lits[0]);
}

void
ClauseDb::compactOccurs(sat::Lit p)
{
    auto &list = occurs_[static_cast<std::size_t>(p.x)];
    std::size_t out = 0;
    for (int ci : list) {
        const Clause &c = clauses_[static_cast<std::size_t>(ci)];
        if (c.dead)
            continue;
        if (!std::binary_search(c.lits.begin(), c.lits.end(), p))
            continue;
        list[out++] = ci;
    }
    list.resize(out);
}

std::vector<sat::Var>
ClauseDb::takeTouched()
{
    std::vector<sat::Var> out;
    out.swap(touched_list_);
    for (sat::Var v : out)
        touched_flag_[static_cast<std::size_t>(v)] = 0;
    return out;
}

sat::Cnf
ClauseDb::emit() const
{
    sat::Cnf out(num_vars_);
    if (contradiction_) {
        out.addClause(sat::LitVec{});
        return out;
    }
    for (const Clause &c : clauses_) {
        if (c.dead)
            continue;
        // Units are root-fixed and live in the reconstruction /
        // fixed list, not the emitted formula.
        if (c.lits.size() == 1 &&
            !value(c.lits[0].var()).isUndef())
            continue;
        out.addClause(c.lits);
    }
    return out;
}

// ----------------------------------------------------------------------
// Propagator
// ----------------------------------------------------------------------

Propagator::Propagator(const ClauseDb &db)
    : assign_(static_cast<std::size_t>(db.numVars()), sat::l_Undef)
{
}

sat::lbool
Propagator::assume(const ClauseDb &db, sat::Lit p,
                   std::int64_t &budget, int skip_clause)
{
    {
        const sat::lbool v = valueOf(p);
        if (v.isFalse())
            return sat::l_False;
        if (v.isTrue())
            return sat::l_True;
    }
    assign_[static_cast<std::size_t>(p.var())] =
        sat::lbool(!p.sign());
    trail_.push_back(p);

    while (qhead_ < trail_.size()) {
        const sat::Lit l = trail_[qhead_++];
        for (int ci : db.occurs(~l)) {
            if (ci == skip_clause || !db.live(ci))
                continue;
            const auto &lits = db.clause(ci).lits;
            budget -= static_cast<std::int64_t>(lits.size());
            sat::Lit unassigned = sat::lit_Undef;
            bool satisfied = false;
            int undef = 0;
            for (sat::Lit q : lits) {
                const sat::lbool v = valueOf(q);
                if (v.isTrue()) {
                    satisfied = true;
                    break;
                }
                if (v.isUndef()) {
                    ++undef;
                    unassigned = q;
                }
            }
            if (satisfied)
                continue;
            if (undef == 0)
                return sat::l_False; // conflict
            if (undef == 1) {
                assign_[static_cast<std::size_t>(
                    unassigned.var())] = sat::lbool(!unassigned.sign());
                trail_.push_back(unassigned);
            }
        }
        if (budget <= 0)
            return sat::l_Undef;
    }
    return sat::l_True;
}

void
Propagator::reset()
{
    for (sat::Lit p : trail_)
        assign_[static_cast<std::size_t>(p.var())] = sat::l_Undef;
    trail_.clear();
    qhead_ = 0;
}

} // namespace hyqsat::simplify
