/**
 * @file
 * Model reconstruction for non-equivalence-preserving rewrites
 * (MiniSat/SatELite style). Passes that remove a variable from the
 * formula — bounded variable elimination, equivalent-literal
 * substitution, root-level unit fixing — push witness-labelled
 * clauses here; extend() replays them in reverse push order over a
 * model of the simplified formula to produce a model of the
 * original.
 *
 * Invariant each push must respect: at push time the entry's clause
 * is implied by (or being removed from) the current formula, and the
 * witness variable never reappears in the formula afterwards.
 * Reverse replay then assigns every removed variable before any
 * earlier entry that mentions it is evaluated.
 */

#ifndef HYQSAT_SIMPLIFY_RECONSTRUCTION_H
#define HYQSAT_SIMPLIFY_RECONSTRUCTION_H

#include <cstddef>
#include <vector>

#include "sat/types.h"

namespace hyqsat::simplify {

/** The reconstruction stack (flat storage, witness-first clauses). */
class ReconstructionStack
{
  public:
    /**
     * Push one entry: @p clause with @p witness as the literal to
     * satisfy when replay finds the clause violated. @p witness must
     * occur in @p clause.
     */
    void push(sat::Lit witness, const sat::LitVec &clause);

    /** Push a unit entry {p} (root-fixed literal). */
    void pushUnit(sat::Lit p) { push(p, sat::LitVec{p}); }

    /**
     * Variable-elimination helper, the MiniSat SimpSolver pattern:
     * push every clause of @p kept_side (each contains @p kept, the
     * eliminated variable's literal on the side with fewer clauses),
     * then a unit of the opposite literal as the default. Reverse
     * replay first applies the default, then flips the variable if
     * any kept clause is left violated.
     */
    void pushElimination(sat::Lit kept,
                         const std::vector<sat::LitVec> &kept_side);

    /**
     * Equivalent-literal helper for the substitution var(p) := q
     * under p == q: pushes (p v ~q) witness p and (~p v q) witness
     * ~p, so replay copies q's value onto p's variable whatever the
     * replay order within the pair.
     */
    void pushEquivalence(sat::Lit p, sat::Lit q);

    /**
     * Replay the stack in reverse over @p model (original variable
     * indexing; callers resize to the original variable count
     * first). Every entry whose clause is violated gets its witness
     * satisfied.
     */
    void extend(std::vector<bool> &model) const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

  private:
    struct Entry
    {
        int begin; ///< into lits_, witness first
        int end;
    };

    std::vector<Entry> entries_;
    sat::LitVec lits_;
};

} // namespace hyqsat::simplify

#endif // HYQSAT_SIMPLIFY_RECONSTRUCTION_H
