/**
 * @file
 * The staged inprocessing pipeline (tentpole of the simplify
 * subsystem). A Pipeline owns a pass configuration and turns a Cnf
 * into a simplified Cnf plus a ReconstructionStack that maps models
 * of the simplified formula back to the original variables.
 *
 * Pass ordering per round: unit propagation -> equivalent-literal
 * substitution (binary-implication-graph SCCs) -> subsumption /
 * self-subsuming resolution -> failed-literal probing -> clause
 * vivification -> bounded variable elimination, repeated until a
 * round changes nothing or max_rounds is reached. The three strength
 * presets map onto this: Off runs nothing, Light runs the
 * equivalence-preserving prefix (units, SCC, subsumption), Full runs
 * everything.
 *
 * BVE caps resolvent length at 3 by default so a 3-SAT input stays
 * 3-SAT — the hybrid frontend requires that shape.
 */

#ifndef HYQSAT_SIMPLIFY_PIPELINE_H
#define HYQSAT_SIMPLIFY_PIPELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sat/cnf.h"
#include "sat/types.h"
#include "simplify/reconstruction.h"

namespace hyqsat {
class MetricsRegistry;
} // namespace hyqsat

namespace hyqsat::simplify {

/** Preset strength levels exposed on every user surface. */
enum class Strength { Off, Light, Full };

/** @return the canonical lowercase name ("off", "light", "full"). */
const char *strengthName(Strength s);

/**
 * Parse a strength name (case-sensitive, canonical spelling).
 * @return true and set @p out on success.
 */
bool parseStrength(const std::string &text, Strength &out);

/** Pass switches and budgets. Default-constructed == Light preset. */
struct Options
{
    bool unit_propagation = true;
    bool subsumption = true;
    bool self_subsumption = true;
    bool equivalent_literals = true;
    bool probing = false;
    bool vivification = false;
    bool elimination = false;

    /** Repeat the pass sequence until fixpoint, at most this often. */
    int max_rounds = 8;

    /** BVE: skip variables with more occurrences per polarity. */
    int bve_occurrence_limit = 10;

    /** BVE: abort a candidate whose resolvent would exceed this. */
    int max_resolvent_len = 3;

    /** BVE: allowed clause-count growth (0 = never grow). */
    int bve_clause_growth = 0;

    /** Propagation budget (literal visits) for probing per run. */
    std::int64_t probe_budget = 2000000;

    /** Propagation budget for vivification per run. */
    std::int64_t vivify_budget = 2000000;

    /**
     * Externally visible variables (assumptions, session interfaces,
     * shared-clause vocabularies). The pipeline's freeze contract:
     * a frozen variable is never substituted away by the SCC pass
     * and never eliminated by BVE, so it survives into Result::cnf
     * unless the formula itself fixes it (root units, probing —
     * formula-implied rewrites a caller can map assumptions
     * through; see Result::mapLiteral). Out-of-range variables are
     * ignored.
     */
    std::vector<sat::Var> frozen;

    /** @return the switch set for a strength preset. */
    static Options preset(Strength s);
};

/** Aggregate pass statistics for one run(). */
struct Stats
{
    int rounds = 0;
    int units = 0;         ///< root-level literals fixed
    int tautologies = 0;   ///< clauses dropped at load
    int subsumed = 0;      ///< clauses removed by subsumption
    int strengthened = 0;  ///< literals removed by self-subsumption
    int equivalences = 0;  ///< variables substituted via SCC
    int failed_literals = 0;
    int vivified = 0;      ///< literals removed by vivification
    int eliminated = 0;    ///< variables removed by BVE
    int clauses_in = 0;
    int clauses_out = 0;
    int vars_in = 0;
    int vars_out = 0;      ///< variables still free afterwards

    /** Sum of the rewrite counters (fixpoint detection). */
    std::int64_t
    work() const
    {
        return static_cast<std::int64_t>(units) + tautologies +
               subsumed + strengthened + equivalences +
               failed_literals + vivified + eliminated;
    }
};

/**
 * Fate of one original literal under the pipeline's rewrites — what
 * Result::mapLiteral reports so incremental callers can translate
 * assumptions and delta clauses into the simplified variable space.
 */
struct MappedLit
{
    enum class Kind {
        Free,       ///< lit is the (chain-followed) equivalent literal
        True,       ///< root-fixed true: assumption trivially holds
        False,      ///< root-fixed false: assumption alone is UNSAT
        Eliminated, ///< BVE removed the variable: NOT mappable
    };

    Kind kind = Kind::Free;
    sat::Lit lit = sat::lit_Undef; ///< valid when kind == Kind::Free
};

/** Result of one pipeline run. */
struct Result
{
    /** Simplified formula over the original variable indexing. */
    sat::Cnf cnf;

    /** False iff a root-level contradiction was derived. */
    bool satisfiable_possible = true;

    /** Root-fixed literals (subset of what reconstruction replays). */
    sat::LitVec fixed;

    /** Witness stack mapping simplified models to original ones. */
    ReconstructionStack reconstruction;

    Stats stats;

    // ------------------------------------------------------------------
    // Per-variable fate map (indexed by original variable; empty when
    // the pipeline ran zero passes — mapLiteral treats that as Free).
    // ------------------------------------------------------------------

    /** Root value after simplification (l_Undef = not fixed). */
    std::vector<sat::lbool> values;

    /**
     * SCC substitution target: the literal equal to mkLit(v, false),
     * lit_Undef when v was not substituted. Targets may chain across
     * rounds; mapLiteral follows the chain.
     */
    sat::LitVec substituted;

    /** BVE-eliminated (satisfiability-preserving only: assumptions
     *  over these variables cannot be mapped — freeze and rerun). */
    std::vector<char> eliminated;

    /**
     * Translate an original-space literal into the simplified
     * formula's space: follow the substitution chain, then report
     * the root value / elimination fate of the final variable.
     * Sound for assumptions and delta clauses because substitution
     * and root fixing are equivalence-preserving rewrites; only
     * Kind::Eliminated is unmappable.
     */
    MappedLit mapLiteral(sat::Lit p) const;

    /**
     * Map a model of the simplified formula to a model of the
     * original formula (resizes to the original variable count).
     */
    std::vector<bool> extendModel(std::vector<bool> model) const;
};

/** The staged simplifier. Stateless across run() calls. */
class Pipeline
{
  public:
    explicit Pipeline(Options opts = {},
                      MetricsRegistry *metrics = nullptr)
        : opts_(opts), metrics_(metrics)
    {
    }

    const Options &options() const { return opts_; }

    /** Simplify @p cnf; publishes simplify.* metrics if attached. */
    Result run(const sat::Cnf &cnf) const;

  private:
    Options opts_;
    MetricsRegistry *metrics_;
};

} // namespace hyqsat::simplify

#endif // HYQSAT_SIMPLIFY_PIPELINE_H
