/**
 * @file
 * The original `sat::simplifyCnf` entry point, now a thin wrapper
 * over the staged pipeline with only the equivalence-preserving
 * passes enabled (units, subsumption, self-subsumption). Its
 * contract is unchanged: the simplified formula is equivalent over
 * the original variables and `fixed` alone extends any model — no
 * reconstruction stack needed by callers.
 */

#include "sat/simplify.h"

#include <utility>

#include "simplify/pipeline.h"

namespace hyqsat::sat {

SimplifyResult
simplifyCnf(const Cnf &cnf, const SimplifyOptions &opts)
{
    simplify::Options po;
    po.unit_propagation = opts.unit_propagation;
    po.subsumption = opts.subsumption;
    po.self_subsumption = opts.self_subsumption;
    po.equivalent_literals = false;
    po.probing = false;
    po.vivification = false;
    po.elimination = false;
    po.max_rounds = opts.max_rounds;

    simplify::Result r = simplify::Pipeline(po).run(cnf);

    SimplifyResult out;
    out.cnf = std::move(r.cnf);
    out.satisfiable_possible = r.satisfiable_possible;
    out.fixed = std::move(r.fixed);
    out.units_propagated = r.stats.units;
    out.subsumed = r.stats.subsumed;
    out.strengthened = r.stats.strengthened;
    out.tautologies = r.stats.tautologies;
    return out;
}

} // namespace hyqsat::sat
