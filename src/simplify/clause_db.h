/**
 * @file
 * Shared working state of the simplification pipeline: the clause
 * set under rewrite with literal-indexed occurrence lists, exact
 * live-occurrence counts, a root-level assignment, a unit queue and
 * a touched-variable queue. Every pass (subsumption, SCC
 * substitution, probing, vivification, elimination) operates on one
 * ClauseDb; the pipeline loads it from a Cnf and emits the
 * surviving clauses at the end.
 *
 * Occurrence lists may hold stale entries (dead clauses, removed
 * literals); traversals filter through the liveness flags and the
 * clause content, while occCount() is kept exact for the cheap
 * bound checks (BVE candidate selection, rare-variable picks).
 */

#ifndef HYQSAT_SIMPLIFY_CLAUSE_DB_H
#define HYQSAT_SIMPLIFY_CLAUSE_DB_H

#include <cstdint>
#include <vector>

#include "sat/cnf.h"
#include "sat/types.h"

namespace hyqsat::simplify {

/** The pipeline's working clause set. */
class ClauseDb
{
  public:
    struct Clause
    {
        sat::LitVec lits;       ///< sorted, duplicate-free
        std::uint64_t sig = 0;  ///< bit per (var % 64)
        bool dead = false;
    };

    /**
     * Load @p cnf with cleanup: literals sorted and deduplicated,
     * tautologies dropped (counted in tautologiesAtLoad()), units
     * queued, an empty clause marks the contradiction.
     */
    explicit ClauseDb(const sat::Cnf &cnf);

    int numVars() const { return num_vars_; }

    /** True once any rewrite derived the empty clause. */
    bool contradiction() const { return contradiction_; }
    void setContradiction() { contradiction_ = true; }

    int tautologiesAtLoad() const { return tautologies_at_load_; }

    // ------------------------------------------------------------------
    // Clause storage
    // ------------------------------------------------------------------

    const std::vector<Clause> &clauses() const { return clauses_; }
    int numClauses() const { return static_cast<int>(clauses_.size()); }
    const Clause &clause(int ci) const
    {
        return clauses_[static_cast<std::size_t>(ci)];
    }
    bool live(int ci) const
    {
        return !clauses_[static_cast<std::size_t>(ci)].dead;
    }

    /**
     * Normalize (sort, dedup) and append a clause. Tautologies are
     * dropped (returns -1); an empty clause sets the contradiction
     * flag; a unit is queued. Returns the new clause index or -1.
     */
    int addClause(sat::LitVec lits);

    /** Mark a clause dead and release its occurrence counts. */
    void killClause(int ci);

    /**
     * Remove literal @p p from clause @p ci (strengthening). Queues
     * the remaining unit / sets the contradiction flag as the clause
     * shrinks. @p p must occur in the clause.
     */
    void removeLiteral(int ci, sat::Lit p);

    // ------------------------------------------------------------------
    // Occurrences
    // ------------------------------------------------------------------

    /** Clause indices that ever contained @p p (stale-filtered). */
    const std::vector<int> &occurs(sat::Lit p) const
    {
        return occurs_[static_cast<std::size_t>(p.x)];
    }

    /** Exact number of live clauses currently containing @p p. */
    int occCount(sat::Lit p) const
    {
        return occ_count_[static_cast<std::size_t>(p.x)];
    }

    /**
     * Drop stale entries from @p p's occurrence list (entries whose
     * clause is dead or no longer contains @p p).
     */
    void compactOccurs(sat::Lit p);

    // ------------------------------------------------------------------
    // Root assignment + removed variables
    // ------------------------------------------------------------------

    sat::lbool value(sat::Var v) const
    {
        return value_[static_cast<std::size_t>(v)];
    }
    void fix(sat::Lit p)
    {
        value_[static_cast<std::size_t>(p.var())] =
            sat::lbool(!p.sign());
    }

    /** Variable substituted or eliminated (never reappears). */
    bool varRemoved(sat::Var v) const
    {
        return removed_[static_cast<std::size_t>(v)] != 0;
    }
    void markRemoved(sat::Var v)
    {
        removed_[static_cast<std::size_t>(v)] = 1;
    }

    /**
     * Frozen variables are externally visible (assumptions, session
     * interfaces): substitution and elimination must keep them in the
     * formula. Root fixing and probing may still assign them — those
     * rewrites are formula-implied, so callers can map an assumption
     * on a fixed variable soundly.
     */
    bool isFrozen(sat::Var v) const
    {
        return frozen_[static_cast<std::size_t>(v)] != 0;
    }
    void setFrozen(sat::Var v)
    {
        frozen_[static_cast<std::size_t>(v)] = 1;
    }

    /**
     * SCC substitution record: the literal q with mkLit(v, false)
     * == q at substitution time (lit_Undef when v was never
     * substituted). Distinguishes equivalence-removed variables
     * (mappable) from BVE-eliminated ones (not mappable).
     */
    sat::Lit substitution(sat::Var v) const
    {
        return substitution_[static_cast<std::size_t>(v)];
    }
    void noteSubstitution(sat::Var v, sat::Lit q)
    {
        substitution_[static_cast<std::size_t>(v)] = q;
    }

    /** True when the variable is still part of the formula. */
    bool varActive(sat::Var v) const
    {
        return !varRemoved(v) && value(v).isUndef();
    }

    std::vector<sat::Lit> &unitQueue() { return unit_queue_; }

    // ------------------------------------------------------------------
    // Touched-variable queue
    // ------------------------------------------------------------------

    /** Record @p v as touched (clause added/removed/strengthened). */
    void touchVar(sat::Var v)
    {
        if (!touched_flag_[static_cast<std::size_t>(v)]) {
            touched_flag_[static_cast<std::size_t>(v)] = 1;
            touched_list_.push_back(v);
        }
    }

    /**
     * Return the variables touched since the last call and clear the
     * queue. Passes that revisit candidates across rounds (BVE) use
     * this to skip variables whose neighbourhood did not change.
     */
    std::vector<sat::Var> takeTouched();

    /** Emit the live clauses into a fresh Cnf (original indexing). */
    sat::Cnf emit() const;

  private:
    int num_vars_ = 0;
    bool contradiction_ = false;
    int tautologies_at_load_ = 0;

    std::vector<Clause> clauses_;
    std::vector<std::vector<int>> occurs_; ///< by Lit.x
    std::vector<int> occ_count_;           ///< by Lit.x, exact
    std::vector<sat::lbool> value_;        ///< by var
    std::vector<char> removed_;            ///< by var
    std::vector<char> frozen_;             ///< by var
    std::vector<sat::Lit> substitution_;   ///< by var, lit_Undef=none
    std::vector<sat::Lit> unit_queue_;
    std::vector<char> touched_flag_;       ///< by var
    std::vector<sat::Var> touched_list_;
};

/**
 * Scratch propagation engine over a ClauseDb for probing and
 * vivification: a trail-based temporary assignment independent of
 * the root values (after root propagation no live clause mentions a
 * fixed variable). assume() may be called repeatedly to build up an
 * assumption sequence; reset() rewinds everything.
 */
class Propagator
{
  public:
    explicit Propagator(const ClauseDb &db);

    /**
     * Assume @p p and propagate to fixpoint through the occurrence
     * lists. @p budget is decremented by clause-visit cost.
     * @p skip_clause is excluded from propagation (vivification
     * removes the clause under test from its own derivation).
     * @return l_False on conflict, l_True on a clean fixpoint,
     *         l_Undef when the budget ran out (state is rewindable
     *         but no conclusion may be drawn).
     */
    sat::lbool assume(const ClauseDb &db, sat::Lit p,
                      std::int64_t &budget, int skip_clause = -1);

    /** Temporary truth value of @p p (undef when unassigned). */
    sat::lbool valueOf(sat::Lit p) const
    {
        const sat::lbool v =
            assign_[static_cast<std::size_t>(p.var())];
        return v ^ p.sign();
    }

    /** Undo every assumption and propagation. */
    void reset();

  private:
    std::vector<sat::lbool> assign_; ///< by var
    std::vector<sat::Lit> trail_;
    std::size_t qhead_ = 0;
};

} // namespace hyqsat::simplify

#endif // HYQSAT_SIMPLIFY_CLAUSE_DB_H
