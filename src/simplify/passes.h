/**
 * @file
 * The individual pipeline passes, each a free function over the
 * shared ClauseDb / ReconstructionStack / Stats triple. Every pass
 * returns false iff it derived a root-level contradiction (the
 * pipeline then stops and reports UNSAT). Exposed as a header so the
 * tests can drive passes in isolation and in randomized orders.
 */

#ifndef HYQSAT_SIMPLIFY_PASSES_H
#define HYQSAT_SIMPLIFY_PASSES_H

#include "simplify/clause_db.h"
#include "simplify/pipeline.h"
#include "simplify/reconstruction.h"

namespace hyqsat::simplify {

/**
 * Drain the unit queue: fix each literal, kill satisfied clauses,
 * strengthen clauses containing the negation. Every other pass
 * assumes this has run (no live clause mentions a fixed variable).
 */
bool propagateUnits(ClauseDb &db, ReconstructionStack &rs, Stats &st);

/**
 * Forward subsumption and (optionally) self-subsuming resolution
 * with the per-clause signature filter, seeded from each clause's
 * least-occurring literal.
 */
bool runSubsumption(ClauseDb &db, const Options &opts, Stats &st);

/**
 * Tarjan SCC over the binary implication graph; every non-singleton
 * SCC collapses onto its minimum literal, substituting the other
 * variables away (reconstruction entries keep them recoverable). An
 * SCC containing a literal and its negation is a contradiction.
 */
bool runEquivalentLiterals(ClauseDb &db, ReconstructionStack &rs,
                           Stats &st);

/**
 * Failed-literal probing: assume each polarity of each active
 * variable in turn; a conflict queues the opposite unit, both
 * polarities failing is a contradiction. Budgeted by
 * opts.probe_budget literal visits.
 */
bool runProbing(ClauseDb &db, const Options &opts, Stats &st);

/**
 * Clause vivification: re-derive each clause literal by literal
 * under the negation of its prefix; implied or falsified literals
 * shorten the clause in place. Budgeted by opts.vivify_budget.
 */
bool runVivification(ClauseDb &db, const Options &opts, Stats &st);

/**
 * Bounded variable elimination (SatELite): resolve out variables
 * whose resolvent set is no larger than the clauses it replaces,
 * respecting opts.max_resolvent_len and opts.bve_occurrence_limit.
 * Eliminated variables push their kept side onto @p rs.
 */
bool runElimination(ClauseDb &db, ReconstructionStack &rs,
                    const Options &opts, Stats &st);

} // namespace hyqsat::simplify

#endif // HYQSAT_SIMPLIFY_PASSES_H
