#include "simplify/pipeline.h"

#include <utility>

#include "simplify/passes.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hyqsat::simplify {

const char *
strengthName(Strength s)
{
    switch (s) {
      case Strength::Off:
        return "off";
      case Strength::Light:
        return "light";
      case Strength::Full:
        return "full";
    }
    return "off";
}

bool
parseStrength(const std::string &text, Strength &out)
{
    if (text == "off") {
        out = Strength::Off;
        return true;
    }
    if (text == "light") {
        out = Strength::Light;
        return true;
    }
    if (text == "full") {
        out = Strength::Full;
        return true;
    }
    return false;
}

Options
Options::preset(Strength s)
{
    Options o;
    switch (s) {
      case Strength::Off:
        o.unit_propagation = false;
        o.subsumption = false;
        o.self_subsumption = false;
        o.equivalent_literals = false;
        o.max_rounds = 0;
        break;
      case Strength::Light:
        break; // the defaults
      case Strength::Full:
        o.probing = true;
        o.vivification = true;
        o.elimination = true;
        break;
    }
    return o;
}

bool
propagateUnits(ClauseDb &db, ReconstructionStack &rs, Stats &st)
{
    auto &queue = db.unitQueue();
    while (!queue.empty() && !db.contradiction()) {
        const sat::Lit p = queue.back();
        queue.pop_back();
        const sat::lbool v = db.value(p.var()) ^ p.sign();
        if (v.isTrue())
            continue;
        if (v.isFalse()) {
            db.setContradiction();
            break;
        }
        db.fix(p);
        rs.pushUnit(p);
        ++st.units;

        db.compactOccurs(p);
        for (int ci : db.occurs(p))
            db.killClause(ci); // satisfied

        db.compactOccurs(~p);
        for (int ci : db.occurs(~p)) {
            db.removeLiteral(ci, ~p); // falsified literal drops out
            if (db.contradiction())
                break;
        }
    }
    queue.clear();
    return !db.contradiction();
}

MappedLit
Result::mapLiteral(sat::Lit p) const
{
    MappedLit out;
    const int nv = static_cast<int>(values.size());
    // Follow the substitution chain. Each hop's variable was
    // permanently removed when the target was recorded, so the chain
    // is acyclic and at most vars_in hops long.
    while (p.var() < nv) {
        const sat::Lit q =
            substituted[static_cast<std::size_t>(p.var())];
        if (q == sat::lit_Undef)
            break;
        p = p.sign() ? ~q : q;
    }
    if (p.var() < nv) {
        if (eliminated[static_cast<std::size_t>(p.var())]) {
            out.kind = MappedLit::Kind::Eliminated;
            return out;
        }
        const sat::lbool v =
            values[static_cast<std::size_t>(p.var())] ^ p.sign();
        if (v.isTrue()) {
            out.kind = MappedLit::Kind::True;
            return out;
        }
        if (v.isFalse()) {
            out.kind = MappedLit::Kind::False;
            return out;
        }
    }
    out.kind = MappedLit::Kind::Free;
    out.lit = p;
    return out;
}

std::vector<bool>
Result::extendModel(std::vector<bool> model) const
{
    if (static_cast<int>(model.size()) < cnf.numVars())
        model.resize(static_cast<std::size_t>(cnf.numVars()), false);
    reconstruction.extend(model);
    return model;
}

Result
Pipeline::run(const sat::Cnf &cnf) const
{
    Timer timer;
    Result res;
    Stats &st = res.stats;
    st.clauses_in = cnf.numClauses();
    st.vars_in = cnf.numVars();

    const Options &o = opts_;
    const bool any_pass = o.unit_propagation || o.subsumption ||
                          o.self_subsumption ||
                          o.equivalent_literals || o.probing ||
                          o.vivification || o.elimination;
    if (o.max_rounds <= 0 || !any_pass) {
        res.cnf = cnf;
        st.clauses_out = cnf.numClauses();
        st.vars_out = cnf.numVars();
        return res;
    }

    ClauseDb db(cnf);
    for (const sat::Var v : o.frozen)
        if (v >= 0 && v < db.numVars())
            db.setFrozen(v);
    st.tautologies = db.tautologiesAtLoad();
    ReconstructionStack &rs = res.reconstruction;

    bool ok = !db.contradiction();
    const auto up = [&] {
        if (ok && o.unit_propagation)
            ok = propagateUnits(db, rs, st);
    };
    for (int round = 0; ok && round < o.max_rounds; ++round) {
        const std::int64_t before = st.work();
        ++st.rounds;
        up();
        if (ok && o.equivalent_literals) {
            ok = runEquivalentLiterals(db, rs, st);
            up();
        }
        if (ok && (o.subsumption || o.self_subsumption)) {
            ok = runSubsumption(db, o, st);
            up();
        }
        if (ok && o.probing) {
            ok = runProbing(db, o, st);
            up();
        }
        if (ok && o.vivification) {
            ok = runVivification(db, o, st);
            up();
        }
        if (ok && o.elimination) {
            ok = runElimination(db, rs, o, st);
            up();
        }
        if (st.work() == before)
            break;
    }

    res.satisfiable_possible = ok && !db.contradiction();
    if (!res.satisfiable_possible) {
        res.cnf = sat::Cnf(cnf.numVars());
        res.cnf.addClause(sat::LitVec{});
    } else {
        res.cnf = db.emit();
        res.cnf.setName(cnf.name());
        const auto nv = static_cast<std::size_t>(db.numVars());
        res.values.assign(nv, sat::l_Undef);
        res.substituted.assign(nv, sat::lit_Undef);
        res.eliminated.assign(nv, 0);
        for (sat::Var v = 0; v < db.numVars(); ++v) {
            const auto i = static_cast<std::size_t>(v);
            res.values[i] = db.value(v);
            res.substituted[i] = db.substitution(v);
            // Removed without a substitution target or a root value:
            // bounded variable elimination took it (only
            // satisfiability-preserving — unmappable for callers).
            res.eliminated[i] =
                db.varRemoved(v) &&
                        db.substitution(v) == sat::lit_Undef &&
                        db.value(v).isUndef()
                    ? 1
                    : 0;
            if (!db.value(v).isUndef())
                res.fixed.push_back(
                    sat::mkLit(v, db.value(v).isFalse()));
            if (db.varActive(v))
                ++st.vars_out;
        }
    }
    st.clauses_out = res.cnf.numClauses();

    if (metrics_) {
        const auto inc = [&](const char *name, int n) {
            if (n > 0)
                metrics_->counter(name)->add(
                    static_cast<std::uint64_t>(n));
        };
        metrics_->counter("simplify.runs")->add(1);
        inc("simplify.rounds", st.rounds);
        inc("simplify.units", st.units);
        inc("simplify.tautologies", st.tautologies);
        inc("simplify.subsumed", st.subsumed);
        inc("simplify.strengthened", st.strengthened);
        inc("simplify.equivalences", st.equivalences);
        inc("simplify.failed_literals", st.failed_literals);
        inc("simplify.vivified", st.vivified);
        inc("simplify.eliminated", st.eliminated);
        inc("simplify.clauses_removed",
            st.clauses_in - st.clauses_out);
        metrics_->timer("simplify.time")->add(timer.seconds());
    }
    return res;
}

} // namespace hyqsat::simplify
