/**
 * @file
 * AVX2 lockstep kernel. Compiled in its own translation unit with
 * -mavx2 -ffp-contract=off (see src/anneal/CMakeLists.txt) so the
 * rest of the library stays portable; the dispatcher only calls in
 * here after a runtime CPU check. No FMA intrinsics anywhere —
 * multiply and add stay separate instructions so every lane computes
 * bit-identically to runLockstepScalar.
 *
 * The zero-temperature greedy decide and all bookkeeping semantics
 * come from the shared sa_batch_kernels.h; the Metropolis decide is
 * re-implemented here with AVX2 compares and table gathers because
 * it runs once per proposal for every lane and the scalar form is
 * the single largest cost in the loop. Its decisions, draws and
 * counters are exactly those of the shared decideLanes() — the
 * bit-equality tests in tests/anneal pin the two together.
 */

#include <immintrin.h>

#include <vector>

#include "anneal/sa_batch_kernels.h"

namespace hyqsat::anneal::detail {

namespace {

/** Sign-bit vector for masked spin flips. */
inline __m256d
signBits()
{
    return _mm256_set1_pd(-0.0);
}

} // namespace

void
runLockstepAvx2(BatchCtx &ctx)
{
    const SaCompiled &c = *ctx.c;
    const int n = ctx.n;
    const int lanes = ctx.lanes;
    const int reads = ctx.reads;
    const int vecs = lanes / 4;
    const std::size_t num_groups = c.groups.size();
    const __m256d minus2 = _mm256_set1_pd(-2.0);
    const __m256d two = _mm256_set1_pd(2.0);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);

    // Real-lane masks (~0 for lanes < reads, 0 for padding), so the
    // decide loops never branch on lane index.
    std::vector<std::uint64_t> real_mask(
        static_cast<std::size_t>(lanes));
    for (int r = 0; r < lanes; ++r)
        real_mask[static_cast<std::size_t>(r)] =
            r < reads ? ~0ull : 0ull;
    const auto realVec = [&](int v) {
        return _mm256_castsi256_pd(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(real_mask.data() +
                                              4 * v)));
    };

    const auto maskVec = [&](int v) {
        return _mm256_castsi256_pd(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ctx.mask + 4 * v)));
    };

    /**
     * Metropolis decide for one proposal, all lanes: identical
     * decisions, stream consumption and counters to the shared
     * decideLanes(ctx, beta, true), with the per-lane table bracket
     * resolved by gathers and every data-dependent choice a vector
     * compare. Returns whether any lane accepted.
     */
    const auto decideMetropolis = [&](double beta) {
        ++ctx.attempts;

        __m256d up = zero;
        for (int v = 0; v < vecs; ++v) {
            const __m256d vd = _mm256_loadu_pd(ctx.delta + 4 * v);
            up = _mm256_or_pd(
                up, _mm256_and_pd(
                        _mm256_cmp_pd(vd, zero, _CMP_GT_OQ),
                        realVec(v)));
        }
        if (_mm256_movemask_pd(up) == 0) {
            // Every real lane downhill or flat: all accept, and the
            // shared stream is untouched (the consumption rule).
            for (int v = 0; v < vecs; ++v) {
                const __m256d m = realVec(v);
                _mm256_storeu_pd(
                    reinterpret_cast<double *>(ctx.mask + 4 * v), m);
                _mm256_storeu_pd(
                    ctx.accepted + 4 * v,
                    _mm256_add_pd(
                        _mm256_loadu_pd(ctx.accepted + 4 * v),
                        _mm256_and_pd(one, m)));
            }
            return true;
        }

        ctx.rng->take(ctx.uniforms, static_cast<std::size_t>(lanes));
        const double *table = acceptTable();
        const __m256d vbeta = _mm256_set1_pd(beta);
        const __m256d vstep = _mm256_set1_pd(kAcceptTableStep);
        const __m256d vtop =
            _mm256_set1_pd(static_cast<double>(kAcceptTableN));
        bool any_ambiguous = false;
        unsigned acc_bits = 0;
        for (int v = 0; v < vecs; ++v) {
            const __m256d vd = _mm256_loadu_pd(ctx.delta + 4 * v);
            const __m256d vu = _mm256_loadu_pd(ctx.uniforms + 4 * v);
            __m256d scaled = _mm256_mul_pd(
                _mm256_mul_pd(vbeta, vd), vstep);
            scaled = _mm256_max_pd(scaled, zero);
            scaled = _mm256_min_pd(scaled, vtop);
            const __m128i j = _mm256_cvttpd_epi32(scaled);
            const __m256d hi = _mm256_i32gather_pd(table, j, 8);
            const __m256d lo = _mm256_i32gather_pd(
                table, _mm_add_epi32(j, _mm_set1_epi32(1)), 8);
            const __m256d down =
                _mm256_cmp_pd(vd, zero, _CMP_LE_OQ);
            const __m256d below_lo =
                _mm256_cmp_pd(vu, lo, _CMP_LT_OQ);
            const __m256d below_hi =
                _mm256_cmp_pd(vu, hi, _CMP_LT_OQ);
            const __m256d sure = _mm256_or_pd(down, below_lo);
            const __m256d real = realVec(v);
            const __m256d m = _mm256_and_pd(real, sure);
            _mm256_storeu_pd(
                reinterpret_cast<double *>(ctx.mask + 4 * v), m);
            _mm256_storeu_pd(
                ctx.accepted + 4 * v,
                _mm256_add_pd(_mm256_loadu_pd(ctx.accepted + 4 * v),
                              _mm256_and_pd(one, m)));
            const __m256d amb = _mm256_andnot_pd(
                sure, _mm256_and_pd(real, below_hi));
            any_ambiguous |= _mm256_movemask_pd(amb) != 0;
            acc_bits |= static_cast<unsigned>(
                _mm256_movemask_pd(m));
        }
        if (any_ambiguous) {
            // Rare: a uniform landed between the table bounds — pay
            // the exact exp(), via the shared fixup rule.
            acc_bits |= resolveAmbiguousLanes(ctx, beta) != 0;
        }
        return acc_bits != 0;
    };

    const auto flipDeltas = [&](int i) {
        const double *s =
            ctx.spins + static_cast<std::size_t>(i) * lanes;
        const double *f =
            ctx.fields + static_cast<std::size_t>(i) * lanes;
        for (int v = 0; v < vecs; ++v) {
            const __m256d vs = _mm256_loadu_pd(s + 4 * v);
            const __m256d vf = _mm256_loadu_pd(f + 4 * v);
            const __m256d vd =
                _mm256_mul_pd(_mm256_mul_pd(vs, minus2), vf);
            _mm256_storeu_pd(ctx.delta + 4 * v, vd);
        }
    };

    // The masked update term t[r] = (2 * s[r]) & mask is hoisted out
    // of the neighbor loop (w[k] * t rounds the same real number as
    // (2 * w[k]) * s — identical bits), mirroring the scalar kernel.
    const auto loadUpdateTerm = [&](const double *s) {
        for (int v = 0; v < vecs; ++v) {
            const __m256d vs = _mm256_loadu_pd(s + 4 * v);
            _mm256_storeu_pd(ctx.tmp + 4 * v,
                             _mm256_and_pd(_mm256_mul_pd(two, vs),
                                           maskVec(v)));
        }
    };

    const auto scatterUpdates = [&](int i) {
        for (std::int32_t k = c.csr.row_ptr[i];
             k < c.csr.row_ptr[i + 1]; ++k) {
            const __m256d vw = _mm256_set1_pd(ctx.w[k]);
            double *fj = ctx.fields +
                         static_cast<std::size_t>(c.csr.col[k]) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const __m256d upd = _mm256_mul_pd(
                    vw, _mm256_loadu_pd(ctx.tmp + 4 * v));
                _mm256_storeu_pd(
                    fj + 4 * v,
                    _mm256_sub_pd(_mm256_loadu_pd(fj + 4 * v), upd));
            }
        }
    };

    const auto flipSpins = [&](double *s) {
        for (int v = 0; v < vecs; ++v) {
            const __m256d vs = _mm256_loadu_pd(s + 4 * v);
            const __m256d flip = _mm256_and_pd(maskVec(v), signBits());
            _mm256_storeu_pd(s + 4 * v, _mm256_xor_pd(vs, flip));
        }
    };

    const auto applyFlip = [&](int i) {
        double *s = ctx.spins + static_cast<std::size_t>(i) * lanes;
        loadUpdateTerm(s);
        scatterUpdates(i);
        flipSpins(s);
    };

    const auto groupDeltas = [&](int g) {
        for (int v = 0; v < vecs; ++v)
            _mm256_storeu_pd(ctx.delta + 4 * v, _mm256_setzero_pd());
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            const double *f =
                ctx.fields + static_cast<std::size_t>(i) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const __m256d vs = _mm256_loadu_pd(s + 4 * v);
                const __m256d vf = _mm256_loadu_pd(f + 4 * v);
                const __m256d vd =
                    _mm256_mul_pd(_mm256_mul_pd(vs, minus2), vf);
                _mm256_storeu_pd(
                    ctx.delta + 4 * v,
                    _mm256_add_pd(_mm256_loadu_pd(ctx.delta + 4 * v),
                                  vd));
            }
        }
        for (std::int32_t e = c.edge_ptr[g]; e < c.edge_ptr[g + 1];
             ++e) {
            const __m256d vw4 =
                _mm256_set1_pd(4.0 * ctx.w[c.edge_slot[e]]);
            const double *su =
                ctx.spins +
                static_cast<std::size_t>(c.edge_u[e]) * lanes;
            const double *sv =
                ctx.spins +
                static_cast<std::size_t>(c.edge_v[e]) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const __m256d t = _mm256_mul_pd(
                    _mm256_loadu_pd(su + 4 * v),
                    _mm256_loadu_pd(sv + 4 * v));
                _mm256_storeu_pd(
                    ctx.delta + 4 * v,
                    _mm256_add_pd(_mm256_loadu_pd(ctx.delta + 4 * v),
                                  _mm256_mul_pd(t, vw4)));
            }
        }
    };

    const auto applyGroup = [&](int g) {
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            loadUpdateTerm(s);
            scatterUpdates(i);
        }
        for (int i : c.groups[static_cast<std::size_t>(g)])
            flipSpins(ctx.spins + static_cast<std::size_t>(i) * lanes);
    };

    // Pull the rows the proposal is about to touch while the decide
    // math runs: the next spin's own rows, and the current spin's
    // neighbor field rows (written on accept). Prefetches don't
    // change any value, so the bit-equality contract is untouched.
    const auto prefetchAround = [&](int i) {
        if (i + 1 < n) {
            const std::size_t next =
                static_cast<std::size_t>(i + 1) * lanes;
            _mm_prefetch(
                reinterpret_cast<const char *>(ctx.spins + next),
                _MM_HINT_T0);
            _mm_prefetch(
                reinterpret_cast<const char *>(ctx.fields + next),
                _MM_HINT_T0);
        }
    };

    for (int sweep = 0; sweep < ctx.sweeps; ++sweep) {
        const double beta = ctx.betas[sweep];
        for (int i = 0; i < n; ++i) {
            flipDeltas(i);
            prefetchAround(i);
            if (decideMetropolis(beta))
                applyFlip(i);
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            groupDeltas(static_cast<int>(g));
            if (decideMetropolis(beta))
                applyGroup(static_cast<int>(g));
        }
    }

    if (ctx.greedy) {
        bool improved = true;
        int guard = 0;
        while (improved && guard++ < 4 * n) {
            improved = false;
            for (int i = 0; i < n; ++i) {
                flipDeltas(i);
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyFlip(i);
                    improved = true;
                }
            }
            for (std::size_t g = 0; g < num_groups; ++g) {
                groupDeltas(static_cast<int>(g));
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyGroup(static_cast<int>(g));
                    improved = true;
                }
            }
        }
    }
}

} // namespace hyqsat::anneal::detail
