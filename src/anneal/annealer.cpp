#include "anneal/annealer.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "util/logging.h"

namespace hyqsat::anneal {

QuantumAnnealer::QuantumAnnealer(const chimera::ChimeraGraph &graph,
                                 Options opts)
    : graph_(graph), opts_(opts), rng_(opts.seed)
{
}

double
QuantumAnnealer::perturb(double value, double range)
{
    if (opts_.noise.coefficient_sigma <= 0.0)
        return value;
    return value +
           rng_.gaussian(0.0, opts_.noise.coefficient_sigma * range);
}

AnnealSample
QuantumAnnealer::sample(const qubo::EncodedProblem &problem,
                        const embed::Embedding &embedding)
{
    AnnealSample out;
    out.device_time_us = opts_.timing.sampleTimeUs(1);
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0)
        return out;
    if (embedding.numNodes() != num_nodes)
        panic("embedding/problem node count mismatch (%d vs %d)",
              embedding.numNodes(), num_nodes);

    // Compact physical qubit indexing over the used qubits.
    std::unordered_map<int, int> dense; // hardware qubit -> spin index
    std::vector<int> spin_node;         // spin index -> logical node
    for (int n = 0; n < num_nodes; ++n) {
        for (int q : embedding.chain(n)) {
            dense.emplace(q, static_cast<int>(dense.size()));
            spin_node.push_back(n);
        }
    }

    const qubo::IsingModel logical = quboToIsing(problem.normalized);
    qubo::IsingModel physical(static_cast<int>(dense.size()));

    // Distribute each node's field over its chain.
    for (int n = 0; n < num_nodes; ++n) {
        const auto &chain = embedding.chain(n);
        const double share =
            logical.field(n) / static_cast<double>(chain.size());
        for (int q : chain)
            physical.addField(dense.at(q), perturb(share, 2.0));
    }

    // Each logical coupling sits on one physical coupler.
    for (const auto &[key, w] : logical.couplingTerms()) {
        if (w == 0.0)
            continue;
        const auto coupler =
            embedding.findCoupler(graph_, key.first(), key.second());
        if (!coupler) {
            panic("embedding lacks a coupler for edge (%d, %d)",
                  key.first(), key.second());
        }
        physical.addCoupling(dense.at(coupler->first),
                             dense.at(coupler->second),
                             perturb(w, 1.0));
    }

    // Ferromagnetic chain couplings on every intra-chain coupler.
    for (int n = 0; n < num_nodes; ++n) {
        const auto &chain = embedding.chain(n);
        for (std::size_t i = 0; i < chain.size(); ++i) {
            for (std::size_t j = i + 1; j < chain.size(); ++j) {
                if (graph_.connected(chain[i], chain[j])) {
                    physical.addCoupling(
                        dense.at(chain[i]), dense.at(chain[j]),
                        perturb(-opts_.chain_strength, 1.0));
                }
            }
        }
    }

    // Anneal. Chains are registered as block-move groups: a logical
    // variable flip is then a single proposal, which keeps long
    // chains kinetically mobile (the device analogue is collective
    // tunneling of the chain).
    SaSampler sampler(physical);
    {
        std::vector<std::vector<int>> groups(num_nodes);
        for (int n = 0; n < num_nodes; ++n)
            for (int q : embedding.chain(n))
                groups[n].push_back(dense.at(q));
        sampler.setGroups(groups);
    }
    SaOptions sa;
    sa.sweeps = opts_.noise.sweeps;
    sa.beta_end = opts_.noise.beta_final;
    sa.greedy_finish = opts_.greedy_finish;

    bool have_best = false;
    for (int attempt = 0; attempt < std::max(opts_.attempts, 1);
         ++attempt) {
        SaResult result = sampler.sample(sa, rng_);

        // Readout error flips individual physical qubits.
        if (opts_.noise.readout_flip_prob > 0.0) {
            for (auto &s : result.spins)
                if (rng_.chance(opts_.noise.readout_flip_prob))
                    s = -s;
            result.energy = sampler.energy(result.spins);
        }

        // De-embed: majority vote per chain.
        std::vector<int> votes(num_nodes, 0);
        std::vector<int> sizes(num_nodes, 0);
        for (std::size_t s = 0; s < result.spins.size(); ++s) {
            votes[spin_node[s]] += result.spins[s];
            ++sizes[spin_node[s]];
        }
        AnnealSample candidate;
        candidate.device_time_us = out.device_time_us;
        candidate.node_bits.assign(num_nodes, false);
        candidate.physical_energy = result.energy;
        for (int n = 0; n < num_nodes; ++n) {
            const int v = votes[n];
            candidate.chain_breaks += (std::abs(v) != sizes[n]);
            if (v == 0)
                candidate.node_bits[n] = rng_.chance(0.5); // tie
            else
                candidate.node_bits[n] = v > 0;
        }
        candidate.clause_energy =
            problem.clauseSpaceEnergy(candidate.node_bits);
        candidate.weighted_energy =
            problem.objective.energy(candidate.node_bits);

        if (!have_best || candidate.clause_energy < out.clause_energy) {
            out = candidate;
            have_best = true;
        }
        if (out.clause_energy == 0.0)
            break;
    }
    return out;
}

AnnealSample
QuantumAnnealer::sampleMajorityVote(const qubo::EncodedProblem &problem,
                                    const embed::Embedding &embedding,
                                    int samples)
{
    AnnealSample out;
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0 || samples <= 0)
        return out;

    std::vector<int> votes(num_nodes, 0);
    for (int k = 0; k < samples; ++k) {
        const AnnealSample shot = sample(problem, embedding);
        out.chain_breaks += shot.chain_breaks;
        for (int n = 0; n < num_nodes; ++n)
            votes[n] += shot.node_bits[n] ? 1 : -1;
    }
    for (int n = 0; n < num_nodes; ++n) {
        if (votes[n] == 0)
            out.node_bits[n] = rng_.chance(0.5);
        else
            out.node_bits[n] = votes[n] > 0;
    }
    out.clause_energy = problem.clauseSpaceEnergy(out.node_bits);
    out.weighted_energy = problem.objective.energy(out.node_bits);
    out.device_time_us = opts_.timing.sampleTimeUs(samples);
    return out;
}

AnnealSample
QuantumAnnealer::sampleLogical(const qubo::EncodedProblem &problem)
{
    AnnealSample out;
    out.device_time_us = opts_.timing.sampleTimeUs(1);
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0)
        return out;

    qubo::IsingModel logical = quboToIsing(problem.normalized);
    if (opts_.noise.coefficient_sigma > 0.0) {
        qubo::IsingModel noisy(logical.numSpins());
        noisy.addOffset(logical.offset());
        for (int i = 0; i < logical.numSpins(); ++i)
            noisy.addField(i, perturb(logical.field(i), 2.0));
        for (const auto &[key, w] : logical.couplingTerms())
            noisy.addCoupling(key.first(), key.second(),
                              perturb(w, 1.0));
        logical = std::move(noisy);
    }

    SaSampler sampler(logical);
    SaOptions sa;
    sa.sweeps = opts_.noise.sweeps;
    sa.beta_end = opts_.noise.beta_final;
    sa.greedy_finish = opts_.greedy_finish;

    bool have_best = false;
    for (int attempt = 0; attempt < std::max(opts_.attempts, 1);
         ++attempt) {
        SaResult result = sampler.sample(sa, rng_);
        if (opts_.noise.readout_flip_prob > 0.0) {
            for (auto &s : result.spins)
                if (rng_.chance(opts_.noise.readout_flip_prob))
                    s = -s;
            result.energy = sampler.energy(result.spins);
        }
        AnnealSample candidate;
        candidate.device_time_us = out.device_time_us;
        candidate.physical_energy = result.energy;
        candidate.node_bits.assign(num_nodes, false);
        for (int n = 0; n < num_nodes; ++n)
            candidate.node_bits[n] = result.spins[n] > 0;
        candidate.clause_energy =
            problem.clauseSpaceEnergy(candidate.node_bits);
        candidate.weighted_energy =
            problem.objective.energy(candidate.node_bits);
        if (!have_best || candidate.clause_energy < out.clause_energy) {
            out = candidate;
            have_best = true;
        }
        if (out.clause_energy == 0.0)
            break;
    }
    return out;
}

} // namespace hyqsat::anneal
