#include "anneal/annealer.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "util/logging.h"

namespace hyqsat::anneal {

/**
 * See annealer.h. The replay schedule records every perturb() the
 * legacy per-sample model build performed, in call order: replaying
 * it with += into zeroed coefficient buffers reproduces the noisy
 * model of the pre-compiled implementation bit for bit (same
 * gaussian draw order, same accumulation order), while the expensive
 * part — graph walks, coupler lookups, adjacency construction — runs
 * once per problem instead of once per sample.
 */
struct AnnealCompiled
{
    /**
     * One recorded coefficient program step. b < 0: a field op
     * adding (base + noise) to h[a] (a is a spin index). b >= 0: a
     * coupling op adding (base + noise) to w[a] and w[b] (both CSR
     * twin slots of the edge).
     */
    struct CoeffOp
    {
        std::int32_t a = 0;
        std::int32_t b = -1;
        double base = 0.0;
        double range = 1.0;
    };

    /** Flat model + chain groups (noise-free base coefficients). */
    std::shared_ptr<const SaCompiled> sa;

    /** Physical spin -> logical node (embedded flavor only). */
    std::vector<int> spin_node;

    /** Noise replay schedule, in legacy perturb() call order. */
    std::vector<CoeffOp> ops;
};

namespace {

std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Memo key for a CompiledSlot: the compiled product depends on the
 * flavor (embedded vs logical), the hardware graph identity and the
 * chain strength; the problem/embedding themselves are identified by
 * the slot's owner (it lives on the QueueEmbedResult). The graph is
 * keyed by its never-reused uid(), not its address — the slot lives
 * on a long-lived cached QueueEmbedResult, so an address could be
 * recycled by a different graph within the slot's lifetime.
 */
std::uint64_t
slotTag(std::uint64_t flavor, const chimera::ChimeraGraph &graph,
        double chain_strength)
{
    std::uint64_t cs = 0;
    std::memcpy(&cs, &chain_strength, sizeof(cs));
    return mix64(mix64(flavor ^ graph.uid()) ^ cs);
}

void
addStats(SaStats &into, const SaStats &s)
{
    into.sweeps += s.sweeps;
    into.flips_attempted += s.flips_attempted;
    into.flips_accepted += s.flips_accepted;
    into.reads += s.reads;
    into.read_groups += s.read_groups;
}

/** Rewrite a coupling op's endpoints to the edge's CSR twin slots. */
void
resolveCouplingSlots(const qubo::CsrIsing &csr,
                     std::vector<AnnealCompiled::CoeffOp> &ops)
{
    for (auto &op : ops) {
        if (op.b < 0)
            continue;
        const int u = op.a;
        const int v = op.b;
        op.a = csr.slot(u, v);
        op.b = csr.slot(v, u);
        if (op.a < 0 || op.b < 0)
            panic("compiled CSR lacks a slot for edge (%d, %d)", u, v);
    }
}

} // namespace

QuantumAnnealer::QuantumAnnealer(const chimera::ChimeraGraph &graph,
                                 Options opts)
    : graph_(graph), opts_(opts), rng_(opts.seed)
{
}

double
QuantumAnnealer::perturb(double value, double range)
{
    if (opts_.noise.coefficient_sigma <= 0.0)
        return value;
    return value +
           rng_.gaussian(0.0, opts_.noise.coefficient_sigma * range);
}

std::shared_ptr<const AnnealCompiled>
QuantumAnnealer::compiledEmbedded(const qubo::EncodedProblem &problem,
                                  const embed::Embedding &embedding,
                                  const embed::CompiledSlot *slot)
{
    const std::uint64_t tag =
        slotTag(/*flavor=*/1, graph_, opts_.chain_strength);
    if (slot) {
        if (auto hit = slot->get(tag))
            return std::static_pointer_cast<const AnnealCompiled>(hit);
    }

    auto cp = std::make_shared<AnnealCompiled>();
    const int num_nodes = problem.numNodes();

    // Compact physical qubit indexing over the used qubits.
    std::unordered_map<int, int> dense; // hardware qubit -> spin index
    for (int n = 0; n < num_nodes; ++n) {
        for (int q : embedding.chain(n)) {
            dense.emplace(q, static_cast<int>(dense.size()));
            cp->spin_node.push_back(n);
        }
    }

    const qubo::IsingModel logical = quboToIsing(problem.normalized);
    qubo::IsingModel physical(static_cast<int>(dense.size()));

    // Distribute each node's field over its chain.
    for (int n = 0; n < num_nodes; ++n) {
        const auto &chain = embedding.chain(n);
        const double share =
            logical.field(n) / static_cast<double>(chain.size());
        for (int q : chain) {
            const int p = dense.at(q);
            physical.addField(p, share);
            cp->ops.push_back({p, -1, share, 2.0});
        }
    }

    // Each logical coupling sits on one physical coupler. The zero
    // skip precedes the (recorded) perturb, exactly as the legacy
    // build skipped before drawing.
    for (const auto &[key, w] : logical.couplingTerms()) {
        if (w == 0.0)
            continue;
        const auto coupler =
            embedding.findCoupler(graph_, key.first(), key.second());
        if (!coupler) {
            panic("embedding lacks a coupler for edge (%d, %d)",
                  key.first(), key.second());
        }
        const int p = dense.at(coupler->first);
        const int q = dense.at(coupler->second);
        physical.addCoupling(p, q, w);
        cp->ops.push_back({p, q, w, 1.0});
    }

    // Ferromagnetic chain couplings on every intra-chain coupler.
    for (int n = 0; n < num_nodes; ++n) {
        const auto &chain = embedding.chain(n);
        for (std::size_t i = 0; i < chain.size(); ++i) {
            for (std::size_t j = i + 1; j < chain.size(); ++j) {
                if (graph_.connected(chain[i], chain[j])) {
                    const int p = dense.at(chain[i]);
                    const int q = dense.at(chain[j]);
                    physical.addCoupling(p, q, -opts_.chain_strength);
                    cp->ops.push_back(
                        {p, q, -opts_.chain_strength, 1.0});
                }
            }
        }
    }

    // Chains are registered as block-move groups: a logical variable
    // flip is then a single proposal, which keeps long chains
    // kinetically mobile (the device analogue is collective
    // tunneling of the chain). include_zero keeps every programmed
    // edge addressable so the noise replay can perturb it.
    SaCompiled built = SaCompiled::build(physical, /*include_zero=*/true);
    {
        std::vector<std::vector<int>> groups(num_nodes);
        for (int n = 0; n < num_nodes; ++n)
            for (int q : embedding.chain(n))
                groups[n].push_back(dense.at(q));
        built.compileGroups(groups);
    }
    resolveCouplingSlots(built.csr, cp->ops);
    cp->sa = std::make_shared<const SaCompiled>(std::move(built));

    if (slot)
        slot->set(tag, cp);
    return cp;
}

std::shared_ptr<const AnnealCompiled>
QuantumAnnealer::compiledLogical(const qubo::EncodedProblem &problem,
                                 const embed::CompiledSlot *slot)
{
    const std::uint64_t tag =
        slotTag(/*flavor=*/2, graph_, opts_.chain_strength);
    if (slot) {
        if (auto hit = slot->get(tag))
            return std::static_pointer_cast<const AnnealCompiled>(hit);
    }

    auto cp = std::make_shared<AnnealCompiled>();
    const qubo::IsingModel logical = quboToIsing(problem.normalized);

    // The legacy noisy rebuild perturbed every field and EVERY
    // coupling map entry (no zero skip here), so record them all;
    // include_zero keeps the zero-weight slots addressable.
    for (int i = 0; i < logical.numSpins(); ++i)
        cp->ops.push_back({i, -1, logical.field(i), 2.0});
    for (const auto &[key, w] : logical.couplingTerms())
        cp->ops.push_back({key.first(), key.second(), w, 1.0});

    SaCompiled built = SaCompiled::build(logical, /*include_zero=*/true);
    resolveCouplingSlots(built.csr, cp->ops);
    cp->sa = std::make_shared<const SaCompiled>(std::move(built));

    if (slot)
        slot->set(tag, cp);
    return cp;
}

void
QuantumAnnealer::applyNoise(const AnnealCompiled &cp, SaSampler &sampler)
{
    // sigma <= 0 draws NOTHING, exactly like the legacy per-sample
    // model build: its perturb() had the same early-out before ever
    // reaching Rng::gaussian, so the noise-free RNG stream never
    // contained noise draws. Verified bit-identical (bits + stream
    // position) against the pre-rewrite build; pinned by the
    // Annealer.GoldenSeed* tests.
    if (opts_.noise.coefficient_sigma <= 0.0) {
        sampler.setCoeffs(nullptr, nullptr);
        return;
    }
    const qubo::CsrIsing &csr = cp.sa->csr;
    noisy_h_.assign(csr.h.size(), 0.0);
    noisy_w_.assign(csr.w.size(), 0.0);
    for (const AnnealCompiled::CoeffOp &op : cp.ops) {
        const double v = perturb(op.base, op.range);
        if (op.b < 0) {
            noisy_h_[op.a] += v;
        } else {
            noisy_w_[op.a] += v;
            noisy_w_[op.b] += v;
        }
    }
    sampler.setCoeffs(noisy_h_.data(), noisy_w_.data());
}

AnnealSample
QuantumAnnealer::sample(const qubo::EncodedProblem &problem,
                        const embed::Embedding &embedding)
{
    return sample(problem, embedding, nullptr);
}

AnnealSample
QuantumAnnealer::sample(const qubo::EncodedProblem &problem,
                        const embed::Embedding &embedding,
                        const embed::CompiledSlot *slot)
{
    run_stats_ = {};
    AnnealSample out;
    out.device_time_us = opts_.timing.sampleTimeUs(1);
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0)
        return out;
    if (embedding.numNodes() != num_nodes)
        panic("embedding/problem node count mismatch (%d vs %d)",
              embedding.numNodes(), num_nodes);

    const auto cp = compiledEmbedded(problem, embedding, slot);
    SaSampler sampler(cp->sa);
    // One noise draw per sample() call (before any sampling draws),
    // matching the legacy once-per-call model build.
    applyNoise(*cp, sampler);

    SaOptions sa;
    sa.sweeps = opts_.noise.sweeps;
    sa.beta_end = opts_.noise.beta_final;
    sa.greedy_finish = opts_.greedy_finish;
    sa.num_reads = opts_.num_reads;
    sa.lockstep = opts_.reads_batch;
    sa.reads_groups = opts_.reads_groups;

    const std::vector<int> &spin_node = cp->spin_node;
    bool have_best = false;
    for (int attempt = 0; attempt < std::max(opts_.attempts, 1);
         ++attempt) {
        SaResult result = sampler.sample(sa, rng_);
        addStats(run_stats_, result.stats);

        // Readout error flips individual physical qubits.
        if (opts_.noise.readout_flip_prob > 0.0) {
            for (auto &s : result.spins)
                if (rng_.chance(opts_.noise.readout_flip_prob))
                    s = -s;
            result.energy = sampler.energy(result.spins);
        }

        // De-embed: majority vote per chain.
        std::vector<int> votes(num_nodes, 0);
        std::vector<int> sizes(num_nodes, 0);
        for (std::size_t s = 0; s < result.spins.size(); ++s) {
            votes[spin_node[s]] += result.spins[s];
            ++sizes[spin_node[s]];
        }
        AnnealSample candidate;
        candidate.device_time_us = out.device_time_us;
        candidate.node_bits.assign(num_nodes, false);
        candidate.physical_energy = result.energy;
        for (int n = 0; n < num_nodes; ++n) {
            const int v = votes[n];
            candidate.chain_breaks += (std::abs(v) != sizes[n]);
            if (v == 0)
                candidate.node_bits[n] = rng_.chance(0.5); // tie
            else
                candidate.node_bits[n] = v > 0;
        }
        candidate.clause_energy =
            problem.clauseSpaceEnergy(candidate.node_bits);
        candidate.weighted_energy =
            problem.objective.energy(candidate.node_bits);

        if (!have_best || candidate.clause_energy < out.clause_energy) {
            out = candidate;
            have_best = true;
        }
        if (out.clause_energy == 0.0)
            break;
    }
    return out;
}

AnnealSample
QuantumAnnealer::sampleMajorityVote(const qubo::EncodedProblem &problem,
                                    const embed::Embedding &embedding,
                                    int samples)
{
    AnnealSample out;
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0 || samples <= 0)
        return out;

    SaStats total;
    std::vector<int> votes(num_nodes, 0);
    for (int k = 0; k < samples; ++k) {
        const AnnealSample shot = sample(problem, embedding);
        addStats(total, run_stats_);
        out.chain_breaks += shot.chain_breaks;
        for (int n = 0; n < num_nodes; ++n)
            votes[n] += shot.node_bits[n] ? 1 : -1;
    }
    for (int n = 0; n < num_nodes; ++n) {
        if (votes[n] == 0)
            out.node_bits[n] = rng_.chance(0.5);
        else
            out.node_bits[n] = votes[n] > 0;
    }
    out.clause_energy = problem.clauseSpaceEnergy(out.node_bits);
    out.weighted_energy = problem.objective.energy(out.node_bits);
    out.device_time_us = opts_.timing.sampleTimeUs(samples);
    run_stats_ = total;
    return out;
}

AnnealSample
QuantumAnnealer::sampleLogical(const qubo::EncodedProblem &problem)
{
    return sampleLogical(problem, nullptr);
}

AnnealSample
QuantumAnnealer::sampleLogical(const qubo::EncodedProblem &problem,
                               const embed::CompiledSlot *slot)
{
    run_stats_ = {};
    AnnealSample out;
    out.device_time_us = opts_.timing.sampleTimeUs(1);
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0)
        return out;

    const auto cp = compiledLogical(problem, slot);
    SaSampler sampler(cp->sa);
    applyNoise(*cp, sampler);

    SaOptions sa;
    sa.sweeps = opts_.noise.sweeps;
    sa.beta_end = opts_.noise.beta_final;
    sa.greedy_finish = opts_.greedy_finish;
    sa.num_reads = opts_.num_reads;
    sa.lockstep = opts_.reads_batch;
    sa.reads_groups = opts_.reads_groups;

    bool have_best = false;
    for (int attempt = 0; attempt < std::max(opts_.attempts, 1);
         ++attempt) {
        SaResult result = sampler.sample(sa, rng_);
        addStats(run_stats_, result.stats);
        if (opts_.noise.readout_flip_prob > 0.0) {
            for (auto &s : result.spins)
                if (rng_.chance(opts_.noise.readout_flip_prob))
                    s = -s;
            result.energy = sampler.energy(result.spins);
        }
        AnnealSample candidate;
        candidate.device_time_us = out.device_time_us;
        candidate.physical_energy = result.energy;
        candidate.node_bits.assign(num_nodes, false);
        for (int n = 0; n < num_nodes; ++n)
            candidate.node_bits[n] = result.spins[n] > 0;
        candidate.clause_energy =
            problem.clauseSpaceEnergy(candidate.node_bits);
        candidate.weighted_energy =
            problem.objective.energy(candidate.node_bits);
        if (!have_best || candidate.clause_energy < out.clause_energy) {
            out = candidate;
            have_best = true;
        }
        if (out.clause_energy == 0.0)
            break;
    }
    return out;
}

} // namespace hyqsat::anneal
