#include "anneal/sa_batch.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <memory>

#include "anneal/sa_batch_kernels.h"
#include "anneal/schedule.h"
#include "anneal/work_pool.h"

namespace hyqsat::anneal {

void
BlockRng::take(double *out, std::size_t count)
{
    // Chunked copies, not a per-element loop: take() sits on the
    // per-proposal path of the lockstep kernels, where a branch per
    // double is measurable.
    while (count > 0) {
        if (pos_ == filled_)
            refill();
        const std::size_t run = std::min(count, filled_ - pos_);
        std::memcpy(out, buf_ + pos_, run * sizeof(double));
        pos_ += run;
        out += run;
        count -= run;
    }
}

void
BlockRng::refill()
{
    base_ += filled_;
    for (std::size_t i = 0; i < kBlock; ++i)
        buf_[i] = uniformAt(base_ + i);
    filled_ = kBlock;
    pos_ = 0;
}

namespace detail {

const double *
acceptTable()
{
    static const auto table = [] {
        std::array<double, kAcceptTableN + 2> t{};
        for (int j = 0; j <= kAcceptTableN; ++j)
            t[static_cast<std::size_t>(j)] =
                std::exp(-static_cast<double>(j) / kAcceptTableStep);
        t[kAcceptTableN + 1] = 0.0;
        return t;
    }();
    return table.data();
}

void
runLockstepScalar(BatchCtx &ctx)
{
    const SaCompiled &c = *ctx.c;
    const int n = ctx.n;
    const int lanes = ctx.lanes;
    const std::size_t num_groups = c.groups.size();

    const auto flipDeltas = [&](int i) {
        const double *s =
            ctx.spins + static_cast<std::size_t>(i) * lanes;
        const double *f =
            ctx.fields + static_cast<std::size_t>(i) * lanes;
        for (int r = 0; r < lanes; ++r)
            ctx.delta[r] = (s[r] * -2.0) * f[r];
    };

    // Hot-path detail shared with the vector kernels: the masked
    // update term t[r] = (2 * s[r]) & mask is hoisted out of the
    // neighbor loop. Multiplying by 2 is exact, so w[k] * t[r]
    // rounds the same real number as the textbook (2 * w[k]) * s[r]
    // — identical bits — while the neighbor loop sheds the per-lane
    // mask AND and, because t is dedicated scratch, the aliasing
    // reloads of s the compiler otherwise has to assume.
    double *const t = ctx.tmp;

    const auto applyFlip = [&](int i) {
        double *s = ctx.spins + static_cast<std::size_t>(i) * lanes;
        for (int r = 0; r < lanes; ++r)
            t[r] = maskBits(2.0 * s[r], ctx.mask[r]);
        for (std::int32_t k = c.csr.row_ptr[i];
             k < c.csr.row_ptr[i + 1]; ++k) {
            const double wk = ctx.w[k];
            double *fj = ctx.fields +
                         static_cast<std::size_t>(c.csr.col[k]) * lanes;
            for (int r = 0; r < lanes; ++r)
                fj[r] -= wk * t[r];
        }
        for (int r = 0; r < lanes; ++r)
            s[r] = flipSignMasked(s[r], ctx.mask[r]);
    };

    const auto groupDeltas = [&](int g) {
        for (int r = 0; r < lanes; ++r)
            ctx.delta[r] = 0.0;
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            const double *f =
                ctx.fields + static_cast<std::size_t>(i) * lanes;
            for (int r = 0; r < lanes; ++r)
                ctx.delta[r] += (s[r] * -2.0) * f[r];
        }
        for (std::int32_t e = c.edge_ptr[g]; e < c.edge_ptr[g + 1];
             ++e) {
            const double w4 = 4.0 * ctx.w[c.edge_slot[e]];
            const double *su =
                ctx.spins +
                static_cast<std::size_t>(c.edge_u[e]) * lanes;
            const double *sv =
                ctx.spins +
                static_cast<std::size_t>(c.edge_v[e]) * lanes;
            for (int r = 0; r < lanes; ++r)
                ctx.delta[r] += (su[r] * sv[r]) * w4;
        }
    };

    const auto applyGroup = [&](int g) {
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            for (int r = 0; r < lanes; ++r)
                t[r] = maskBits(2.0 * s[r], ctx.mask[r]);
            for (std::int32_t k = c.csr.row_ptr[i];
                 k < c.csr.row_ptr[i + 1]; ++k) {
                const double wk = ctx.w[k];
                double *fj =
                    ctx.fields +
                    static_cast<std::size_t>(c.csr.col[k]) * lanes;
                for (int r = 0; r < lanes; ++r)
                    fj[r] -= wk * t[r];
            }
        }
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            for (int r = 0; r < lanes; ++r)
                s[r] = flipSignMasked(s[r], ctx.mask[r]);
        }
    };

    for (int sweep = 0; sweep < ctx.sweeps; ++sweep) {
        const double beta = ctx.betas[sweep];
        for (int i = 0; i < n; ++i) {
            flipDeltas(i);
            if (decideLanes(ctx, beta, /*metropolis=*/true))
                applyFlip(i);
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            groupDeltas(static_cast<int>(g));
            if (decideLanes(ctx, beta, /*metropolis=*/true))
                applyGroup(static_cast<int>(g));
        }
    }

    if (ctx.greedy) {
        bool improved = true;
        int guard = 0;
        while (improved && guard++ < 4 * n) {
            improved = false;
            for (int i = 0; i < n; ++i) {
                flipDeltas(i);
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyFlip(i);
                    improved = true;
                }
            }
            for (std::size_t g = 0; g < num_groups; ++g) {
                groupDeltas(static_cast<int>(g));
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyGroup(static_cast<int>(g));
                    improved = true;
                }
            }
        }
    }
}

} // namespace detail

namespace {

/**
 * One lockstep group: @p reads reads advance together through one
 * instruction stream, seeded from @p base. This is the whole PR 9
 * single-group path verbatim — the parallel scheduler below only
 * decides how reads partition into groups and where each group runs.
 */
std::vector<SaResult>
runLockstepGroup(const SaCompiled &compiled, const double *h,
                 const double *w, const SaOptions &opts, int reads,
                 std::uint64_t base, simd::Isa isa)
{
    using namespace detail;

    const int n = compiled.numSpins();
    const int lanes =
        (reads + kLaneQuantum - 1) / kLaneQuantum * kLaneQuantum;
    const int sweeps = std::max(opts.sweeps, 1);
    const std::vector<double> betas =
        geometricBetaSchedule(opts.beta_start, opts.beta_end, sweeps);

    // SoA rows are `lanes` doubles; aligning the bases to a cache
    // line keeps an 8-lane row inside one line instead of straddling
    // two (std::vector only guarantees 16 bytes). Values, and hence
    // results, are unchanged — this is purely a traffic optimization.
    const std::size_t soa =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(lanes);
    const auto alignedBase = [soa](std::vector<double> &v) {
        void *p = v.data();
        std::size_t space = v.size() * sizeof(double);
        return static_cast<double *>(
            std::align(64, soa * sizeof(double), p, space));
    };
    std::vector<double> spins_buf(soa + 8);
    std::vector<double> fields_buf(soa + 8);
    double *const spins = alignedBase(spins_buf);
    double *const fields = alignedBase(fields_buf);
    // Per-lane scratch rows share one cache-aligned arena (each row
    // is touched every proposal; at lanes = 8 each is one line).
    const auto scratchRow = [lanes](std::vector<double> &v, int slot) {
        void *p = v.data();
        std::size_t space = v.size() * sizeof(double);
        return static_cast<double *>(std::align(
                   64, v.size() * sizeof(double) - 64, p, space)) +
               static_cast<std::size_t>(slot) *
                   static_cast<std::size_t>(lanes);
    };
    std::vector<double> scratch(static_cast<std::size_t>(lanes) * 4 +
                                8);
    double *const delta = scratchRow(scratch, 0);
    double *const uniforms = scratchRow(scratch, 1);
    double *const tmp = scratchRow(scratch, 2);
    double *const accepted = scratchRow(scratch, 3);
    std::fill(accepted, accepted + lanes, 0.0);
    std::vector<std::uint64_t> mask_buf(
        static_cast<std::size_t>(lanes) + 8);
    void *mp = mask_buf.data();
    std::size_t mspace = mask_buf.size() * sizeof(std::uint64_t);
    std::uint64_t *const mask = static_cast<std::uint64_t *>(
        std::align(64, static_cast<std::size_t>(lanes) *
                           sizeof(std::uint64_t),
                   mp, mspace));

    // Per-lane initial spins from decorrelated counter streams
    // (padded lanes get real values too — they participate in every
    // vector op but never accept, so any defined state works).
    for (int r = 0; r < lanes; ++r) {
        const BlockRng init(base +
                            (static_cast<std::uint64_t>(r) + 1) *
                                0x9e3779b97f4a7c15ull);
        for (int i = 0; i < n; ++i) {
            spins[static_cast<std::size_t>(i) * lanes + r] =
                init.uniformAt(static_cast<std::uint64_t>(i)) < 0.5
                    ? 1.0
                    : -1.0;
        }
    }

    // Cached local fields, shared (ISA-neutral) setup code.
    for (int i = 0; i < n; ++i) {
        for (int r = 0; r < lanes; ++r) {
            double f = h[i];
            for (std::int32_t k = compiled.csr.row_ptr[i];
                 k < compiled.csr.row_ptr[i + 1]; ++k) {
                f += w[k] *
                     spins[static_cast<std::size_t>(
                               compiled.csr.col[k]) *
                               lanes +
                           r];
            }
            fields[static_cast<std::size_t>(i) * lanes + r] = f;
        }
    }

    BlockRng stream(base);
    BatchCtx ctx;
    ctx.c = &compiled;
    ctx.h = h;
    ctx.w = w;
    ctx.n = n;
    ctx.reads = reads;
    ctx.lanes = lanes;
    ctx.spins = spins;
    ctx.fields = fields;
    ctx.betas = betas.data();
    ctx.sweeps = sweeps;
    ctx.greedy = opts.greedy_finish;
    ctx.rng = &stream;
    ctx.delta = delta;
    ctx.uniforms = uniforms;
    ctx.tmp = tmp;
    ctx.mask = mask;
    ctx.accepted = accepted;

    simd::Isa use = isa;
    // The 512-bit kernel assumes whole 8-lane vectors; a 4-lane
    // batch (reads <= 4) keeps its contractual lane count and runs
    // on the next tier down instead.
    if (use == simd::Isa::Avx512 && lanes % 8 != 0)
        use = simd::Isa::Avx2;
#if !defined(HYQSAT_HAVE_AVX512_KERNEL)
    if (use == simd::Isa::Avx512)
        use = simd::Isa::Avx2;
#endif
#if !defined(HYQSAT_HAVE_AVX2_KERNEL)
    if (use == simd::Isa::Avx2)
        use = simd::Isa::Scalar;
#endif
#if !defined(HYQSAT_HAVE_NEON_KERNEL)
    if (use == simd::Isa::Neon)
        use = simd::Isa::Scalar;
#endif
    switch (use) {
#if defined(HYQSAT_HAVE_AVX512_KERNEL)
    case simd::Isa::Avx512:
        runLockstepAvx512(ctx);
        break;
#endif
#if defined(HYQSAT_HAVE_AVX2_KERNEL)
    case simd::Isa::Avx2:
        runLockstepAvx2(ctx);
        break;
#endif
#if defined(HYQSAT_HAVE_NEON_KERNEL)
    case simd::Isa::Neon:
        runLockstepNeon(ctx);
        break;
#endif
    default:
        runLockstepScalar(ctx);
        break;
    }

    // Exact per-read energies from the final spins: the kernels do
    // not carry a running energy (accumulated deltas could drift,
    // and the O(nnz) pass per run is negligible).
    std::vector<SaResult> out(static_cast<std::size_t>(reads));
    std::vector<std::int8_t> s8(static_cast<std::size_t>(n));
    for (int r = 0; r < reads; ++r) {
        for (int i = 0; i < n; ++i) {
            s8[static_cast<std::size_t>(i)] =
                spins[static_cast<std::size_t>(i) * lanes + r] > 0.0
                    ? 1
                    : -1;
        }
        SaResult &res = out[static_cast<std::size_t>(r)];
        res.spins = s8;
        res.energy = compiled.csr.energyWith(s8.data(), h, w);
        res.stats.sweeps = static_cast<std::uint64_t>(sweeps);
        res.stats.flips_attempted = ctx.attempts;
        res.stats.flips_accepted = static_cast<std::uint64_t>(
            accepted[static_cast<std::size_t>(r)]);
        res.stats.reads = 1;
    }
    return out;
}

} // namespace

std::vector<SaResult>
sampleLockstep(const SaCompiled &compiled, const double *h,
               const double *w, const SaOptions &opts,
               std::uint64_t base, simd::Isa isa, WorkPool *pool)
{
    const int reads = std::max(opts.num_reads, 1);
    const int num_groups = lockstepGroupCount(reads, opts.reads_groups);
    if (num_groups <= 1)
        return runLockstepGroup(compiled, h, w, opts, reads, base, isa);

    // Balanced partition (every group non-empty, sizes within one of
    // each other) — like the group seeds, a pure function of
    // (reads, num_groups). Groups write disjoint [lo, hi) slices of
    // the shared result vector, so the merge is contention-free and
    // order-independent by construction.
    std::vector<SaResult> out(static_cast<std::size_t>(reads));
    WorkPool &wp = pool ? *pool : WorkPool::shared();
    wp.runIndexed(num_groups, [&](int g) {
        const int lo = static_cast<int>(
            static_cast<std::int64_t>(g) * reads / num_groups);
        const int hi = static_cast<int>(
            static_cast<std::int64_t>(g + 1) * reads / num_groups);
        std::vector<SaResult> part =
            runLockstepGroup(compiled, h, w, opts, hi - lo,
                             lockstepGroupSeed(base, g), isa);
        for (int r = lo; r < hi; ++r)
            out[static_cast<std::size_t>(r)] =
                std::move(part[static_cast<std::size_t>(r - lo)]);
    });
    return out;
}

} // namespace hyqsat::anneal
