#include "anneal/batch_sampler.h"

#include <algorithm>

namespace hyqsat::anneal {

namespace {

/** Distinct, well-separated per-worker seed stream. */
std::uint64_t
workerSeed(std::uint64_t base, int index)
{
    // Worker 0 keeps the base seed so batch_samples=1 reproduces the
    // plain QaSampler stream exactly.
    return base + static_cast<std::uint64_t>(index) *
                      0x9e3779b97f4a7c15ull;
}

} // namespace

BatchSampler::BatchSampler(const chimera::ChimeraGraph &graph,
                           Options opts)
    : opts_(opts)
{
    const int n = std::clamp(opts_.samples, 1, 16);
    opts_.samples = n;
    annealers_.reserve(n);
    results_.resize(n);
    for (int i = 0; i < n; ++i) {
        QuantumAnnealer::Options a = opts_.annealer;
        a.seed = workerSeed(opts_.annealer.seed, i);
        annealers_.push_back(
            std::make_unique<QuantumAnnealer>(graph, a));
    }
    workers_.reserve(n);
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

BatchSampler::~BatchSampler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
BatchSampler::workerLoop(int index)
{
    std::uint64_t seen = 0;
    for (;;) {
        const SampleRequest *request = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            request = request_;
        }

        // Each worker samples with its own annealer (and Rng), so no
        // state is shared during the round.
        AnnealSample sample;
        if (request->use_embedding) {
            sample = annealers_[index]->sample(*request->problem,
                                              *request->embedding);
        } else {
            sample =
                annealers_[index]->sampleLogical(*request->problem);
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            results_[index] = std::move(sample);
            --pending_;
        }
        done_cv_.notify_all();
    }
}

AnnealSample
BatchSampler::compute(const SampleRequest &request)
{
    const int n = numWorkers();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        request_ = &request;
        pending_ = n;
        ++generation_;
    }
    work_cv_.notify_all();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] { return pending_ == 0; });
        request_ = nullptr;
    }

    // Best clause-space energy wins; the first worker breaks ties so
    // the result is independent of completion order.
    int best = 0;
    for (int i = 1; i < n; ++i) {
        if (results_[i].clause_energy < results_[best].clause_energy)
            best = i;
    }
    AnnealSample out = results_[best];

    // Device model: N consecutive anneal-readout cycles (the same
    // schedule sampleMajorityVote charges), regardless of the host
    // running them in parallel.
    out.device_time_us = opts_.annealer.timing.sampleTimeUs(n);
    int breaks = 0;
    for (const auto &r : results_)
        breaks += r.chain_breaks;
    out.chain_breaks = breaks;
    return out;
}

} // namespace hyqsat::anneal
