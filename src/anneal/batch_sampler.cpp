#include "anneal/batch_sampler.h"

#include <algorithm>

#include "anneal/work_pool.h"
#include "embed/hyqsat_embedder.h"

namespace hyqsat::anneal {

namespace {

/** Distinct, well-separated per-worker seed stream. */
std::uint64_t
workerSeed(std::uint64_t base, int index)
{
    // Worker 0 keeps the base seed so batch_samples=1 reproduces the
    // plain QaSampler stream exactly.
    return base + static_cast<std::uint64_t>(index) *
                      0x9e3779b97f4a7c15ull;
}

} // namespace

BatchSampler::BatchSampler(const chimera::ChimeraGraph &graph,
                           Options opts)
    : opts_(opts), metrics_(AnnealMetrics::resolve(opts.metrics))
{
    const int n = std::clamp(opts_.samples, 1, 16);
    opts_.samples = n;
    annealers_.reserve(n);
    results_.resize(n);
    for (int i = 0; i < n; ++i) {
        QuantumAnnealer::Options a = opts_.annealer;
        a.seed = workerSeed(opts_.annealer.seed, i);
        annealers_.push_back(
            std::make_unique<QuantumAnnealer>(graph, a));
    }
}

AnnealSample
BatchSampler::compute(const SampleRequest &request)
{
    MetricTimer::Scope scope(metrics_.sample_timer);
    const int n = numWorkers();
    const embed::CompiledSlot *slot =
        request.embedded ? &request.embedded->compiled : nullptr;

    // Each worker samples with its own annealer (and Rng), so no
    // state is shared during the round — except the compiled-model
    // slot, which is internally synchronized (first compile wins).
    WorkPool::shared().runIndexed(n, [&](int i) {
        if (request.use_embedding) {
            results_[i] = annealers_[i]->sample(*request.problem,
                                                *request.embedding,
                                                slot);
        } else {
            results_[i] =
                annealers_[i]->sampleLogical(*request.problem, slot);
        }
    });

    // The fan-out barrier has passed: every annealer is quiescent, so
    // reading its stats (and recording from this one thread) is safe.
    SaStats total;
    for (const auto &a : annealers_) {
        const SaStats &s = a->lastRunStats();
        total.sweeps += s.sweeps;
        total.flips_attempted += s.flips_attempted;
        total.flips_accepted += s.flips_accepted;
        total.reads += s.reads;
    }
    metrics_.record(total);

    // Best clause-space energy wins; the first worker breaks ties so
    // the result is independent of completion order.
    int best = 0;
    for (int i = 1; i < n; ++i) {
        if (results_[i].clause_energy < results_[best].clause_energy)
            best = i;
    }
    AnnealSample out = results_[best];

    // Device model: N consecutive anneal-readout cycles (the same
    // schedule sampleMajorityVote charges), regardless of the host
    // running them in parallel.
    out.device_time_us = opts_.annealer.timing.sampleTimeUs(n);
    int breaks = 0;
    for (const auto &r : results_)
        breaks += r.chain_breaks;
    out.chain_breaks = breaks;
    return out;
}

} // namespace hyqsat::anneal
