#include "anneal/sa_sampler.h"

#include <algorithm>
#include <cmath>

#include "anneal/sa_batch.h"
#include "anneal/schedule.h"
#include "anneal/work_pool.h"

namespace hyqsat::anneal {

namespace {

/**
 * Width of the boundary band inside which a cached delta is
 * recomputed with the legacy summation order before the
 * accept/reject decision. Coefficients in this codebase are O(0.1)
 * to O(10) (normalized QUBOs, unit chain couplings, sigma*range
 * noise), so genuine deltas are either exactly zero — frequent, and
 * the dangerous case, since `dE <= 0` consumes no uniform draw — or
 * well outside this band; incremental-update drift is bounded far
 * below it. Recomputing inside the band costs one legacy-style
 * O(deg) scan on a vanishing fraction of proposals.
 */
constexpr double kBoundaryBand = 1e-9;

/**
 * exp(-x) is exactly 0.0 for every x above this, so an uphill move
 * with beta*dE beyond it can never be accepted — by any uniform in
 * [0, 1) — and the exp() call is skipped (the draw still happens, to
 * keep the stream aligned).
 */
constexpr double kExpUnderflow = 746.0;

/** Aux-read seed decorrelation (same constant as portfolio seeds). */
constexpr std::uint64_t kReadSeedStride = 0x9e3779b97f4a7c15ull;

/**
 * Per-thread memo of the inverse-temperature ramp and the per-sweep
 * acceptance threshold table (the dE beyond which exp underflows):
 * consecutive samples reuse the same schedule, so rebuild only when
 * the options change. Thread-local so pool chains never share.
 */
struct ScheduleMemo
{
    double beta_start = -1.0;
    double beta_end = -1.0;
    int sweeps = -1;
    std::vector<double> betas;
    std::vector<double> max_delta; ///< per-sweep acceptance threshold

    const ScheduleMemo &
    refresh(const SaOptions &opts)
    {
        const int n = std::max(opts.sweeps, 1);
        if (opts.beta_start == beta_start && opts.beta_end == beta_end &&
            n == sweeps)
            return *this;
        beta_start = opts.beta_start;
        beta_end = opts.beta_end;
        sweeps = n;
        betas = geometricBetaSchedule(opts.beta_start, opts.beta_end, n);
        max_delta.resize(betas.size());
        for (std::size_t i = 0; i < betas.size(); ++i)
            max_delta[i] = kExpUnderflow / betas[i];
        return *this;
    }
};

const ScheduleMemo &
scheduleFor(const SaOptions &opts)
{
    thread_local ScheduleMemo memo;
    return memo.refresh(opts);
}

} // namespace

// ----------------------------------------------------------------------
// SaCompiled
// ----------------------------------------------------------------------

SaCompiled
SaCompiled::build(const qubo::IsingModel &model, bool include_zero)
{
    SaCompiled out;
    out.csr = qubo::CsrIsing::fromModel(model, include_zero);
    out.group_of.assign(out.numSpins(), -1);
    out.edge_ptr.assign(1, 0);
    return out;
}

void
SaCompiled::compileGroups(const std::vector<std::vector<int>> &gs)
{
    groups = gs;
    group_of.assign(numSpins(), -1);
    for (std::size_t g = 0; g < groups.size(); ++g)
        for (int i : groups[g])
            group_of[i] = static_cast<int>(g);

    edge_ptr.assign(1, 0);
    edge_u.clear();
    edge_v.clear();
    edge_slot.clear();
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (int i : groups[g]) {
            for (std::int32_t k = csr.row_ptr[i]; k < csr.row_ptr[i + 1];
                 ++k) {
                const int j = csr.col[k];
                if (j > i && group_of[j] == static_cast<int>(g)) {
                    edge_u.push_back(i);
                    edge_v.push_back(j);
                    edge_slot.push_back(k);
                }
            }
        }
        edge_ptr.push_back(static_cast<std::int32_t>(edge_u.size()));
    }
}

// ----------------------------------------------------------------------
// detail::IncrementalIsing
// ----------------------------------------------------------------------

namespace detail {

void
IncrementalIsing::reset(const SaCompiled &c, const double *h,
                        const double *w, std::vector<std::int8_t> spins)
{
    c_ = &c;
    h_ = h;
    w_ = w;
    spins_ = std::move(spins);
    const int n = c.numSpins();
    f_.assign(n, 0.0);

    // One pass builds both the local fields and the running energy
    // (each coupling counted once at its j > i twin, legacy order).
    double e = c.csr.offset;
    for (int i = 0; i < n; ++i) {
        double f = h_[i];
        for (std::int32_t k = c.csr.row_ptr[i]; k < c.csr.row_ptr[i + 1];
             ++k) {
            const int j = c.csr.col[k];
            f += w_[k] * spins_[j];
            if (j > i)
                e += w_[k] * spins_[i] * spins_[j];
        }
        f_[i] = f;
        e += h_[i] * spins_[i];
    }
    energy_ = e;
}

double
IncrementalIsing::freshFlipDelta(int i) const
{
    double f = h_[i];
    for (std::int32_t k = c_->csr.row_ptr[i]; k < c_->csr.row_ptr[i + 1];
         ++k)
        f += w_[k] * spins_[c_->csr.col[k]];
    return -2.0 * spins_[i] * f;
}

double
IncrementalIsing::groupDelta(int g) const
{
    // Flipping the block negates every member's field term and its
    // boundary couplings; in-group couplings are invariant, so the
    // naive sum of single-spin deltas double-counts them with the
    // wrong sign — the +4 w s_u s_v terms put them back.
    double delta = 0.0;
    for (int i : c_->groups[g])
        delta += -2.0 * spins_[i] * f_[i];
    for (std::int32_t e = c_->edge_ptr[g]; e < c_->edge_ptr[g + 1]; ++e) {
        delta += 4.0 * w_[c_->edge_slot[e]] * spins_[c_->edge_u[e]] *
                 spins_[c_->edge_v[e]];
    }
    return delta;
}

double
IncrementalIsing::freshGroupDelta(int g) const
{
    double delta = 0.0;
    for (int i : c_->groups[g]) {
        double boundary = h_[i];
        for (std::int32_t k = c_->csr.row_ptr[i];
             k < c_->csr.row_ptr[i + 1]; ++k) {
            const int j = c_->csr.col[k];
            if (c_->group_of[j] != g)
                boundary += w_[k] * spins_[j];
        }
        delta += -2.0 * spins_[i] * boundary;
    }
    return delta;
}

void
IncrementalIsing::applyFlip(int i, double delta)
{
    const std::int8_t old = spins_[i];
    for (std::int32_t k = c_->csr.row_ptr[i]; k < c_->csr.row_ptr[i + 1];
         ++k)
        f_[c_->csr.col[k]] -= 2.0 * w_[k] * old;
    spins_[i] = -old;
    energy_ += delta;
}

void
IncrementalIsing::applyGroup(int g, double delta)
{
    // Neighbor fields update against the members' OLD spins, so all
    // field updates happen before any member is negated.
    for (int i : c_->groups[g]) {
        const std::int8_t old = spins_[i];
        for (std::int32_t k = c_->csr.row_ptr[i];
             k < c_->csr.row_ptr[i + 1]; ++k)
            f_[c_->csr.col[k]] -= 2.0 * w_[k] * old;
    }
    for (int i : c_->groups[g])
        spins_[i] = -spins_[i];
    energy_ += delta;
}

} // namespace detail

// ----------------------------------------------------------------------
// SaSampler
// ----------------------------------------------------------------------

SaSampler::SaSampler(const qubo::IsingModel &model)
    : compiled_(std::make_shared<SaCompiled>(
          SaCompiled::build(model, /*include_zero=*/false)))
{
    h_ = compiled_->csr.h.data();
    w_ = compiled_->csr.w.data();
}

SaSampler::SaSampler(std::shared_ptr<const SaCompiled> compiled)
    : compiled_(std::move(compiled))
{
    h_ = compiled_->csr.h.data();
    w_ = compiled_->csr.w.data();
}

void
SaSampler::setGroups(const std::vector<std::vector<int>> &groups)
{
    // Copy-on-write: the compiled model may be shared (memoized next
    // to an embed-cache entry), so never mutate it in place.
    auto clone = std::make_shared<SaCompiled>(*compiled_);
    clone->compileGroups(groups);
    compiled_ = std::move(clone);
    if (!external_coeffs_) {
        h_ = compiled_->csr.h.data();
        w_ = compiled_->csr.w.data();
    }
}

void
SaSampler::setCoeffs(const double *h, const double *w)
{
    external_coeffs_ = h != nullptr;
    h_ = h ? h : compiled_->csr.h.data();
    w_ = w ? w : compiled_->csr.w.data();
}

SaResult
SaSampler::runChain(const SaOptions &opts, Rng &rng) const
{
    const SaCompiled &c = *compiled_;
    const int n = c.numSpins();
    const std::size_t num_groups = c.groups.size();

    std::vector<std::int8_t> init(n);
    for (auto &s : init)
        s = rng.chance(0.5) ? 1 : -1;

    detail::IncrementalIsing inc;
    inc.reset(c, h_, w_, std::move(init));

    SaStats stats;
    stats.reads = 1;

    const ScheduleMemo &schedule = scheduleFor(opts);
    stats.sweeps = schedule.betas.size();
    for (std::size_t sweep = 0; sweep < schedule.betas.size(); ++sweep) {
        const double beta = schedule.betas[sweep];
        const double max_delta = schedule.max_delta[sweep];
        for (int i = 0; i < n; ++i) {
            // Energy change of flipping spin i:
            // dE = -2 * s_i * (h_i + sum_j J_ij s_j).
            double delta = inc.flipDelta(i);
            if (delta > -kBoundaryBand && delta < kBoundaryBand)
                delta = inc.freshFlipDelta(i); // exactness guard
            ++stats.flips_attempted;
            if (delta <= 0.0) {
                inc.applyFlip(i, delta);
                ++stats.flips_accepted;
            } else {
                // The uniform draw happens exactly when dE > 0 (the
                // pinned RNG-consumption contract); exp() only when
                // it can possibly accept.
                const double u = rng.uniform();
                if (delta <= max_delta &&
                    u < std::exp(-beta * delta)) {
                    inc.applyFlip(i, delta);
                    ++stats.flips_accepted;
                }
            }
        }
        // Block moves over registered groups (qubit chains).
        for (std::size_t g = 0; g < num_groups; ++g) {
            const int gi = static_cast<int>(g);
            double delta = inc.groupDelta(gi);
            if (delta > -kBoundaryBand && delta < kBoundaryBand)
                delta = inc.freshGroupDelta(gi);
            ++stats.flips_attempted;
            if (delta <= 0.0) {
                inc.applyGroup(gi, delta);
                ++stats.flips_accepted;
            } else {
                const double u = rng.uniform();
                if (delta <= max_delta &&
                    u < std::exp(-beta * delta)) {
                    inc.applyGroup(gi, delta);
                    ++stats.flips_accepted;
                }
            }
        }
    }

    if (opts.greedy_finish) {
        bool improved = true;
        int guard = 0;
        while (improved && guard++ < 4 * n) {
            improved = false;
            for (int i = 0; i < n; ++i) {
                double delta = inc.flipDelta(i);
                if (delta > -kBoundaryBand && delta < kBoundaryBand)
                    delta = inc.freshFlipDelta(i);
                ++stats.flips_attempted;
                if (delta < 0.0) {
                    inc.applyFlip(i, delta);
                    ++stats.flips_accepted;
                    improved = true;
                }
            }
            for (std::size_t g = 0; g < num_groups; ++g) {
                const int gi = static_cast<int>(g);
                double delta = inc.groupDelta(gi);
                if (delta > -kBoundaryBand && delta < kBoundaryBand)
                    delta = inc.freshGroupDelta(gi);
                ++stats.flips_attempted;
                if (delta < 0.0) {
                    inc.applyGroup(gi, delta);
                    ++stats.flips_accepted;
                    improved = true;
                }
            }
        }
    }

    SaResult result;
    result.energy = inc.energy();
    result.spins = inc.takeSpins();
    result.stats = stats;
    return result;
}

SaResult
SaSampler::sample(const SaOptions &opts, Rng &rng) const
{
    if (opts.num_reads <= 1)
        return runChain(opts, rng);
    auto all = sampleAll(opts, rng);
    return std::move(all.front());
}

std::vector<SaResult>
SaSampler::sampleAll(const SaOptions &opts, Rng &rng) const
{
    const int reads = std::max(opts.num_reads, 1);
    std::vector<SaResult> out(reads);
    if (reads == 1) {
        out[0] = runChain(opts, rng);
        return out;
    }

    if (opts.lockstep) {
        // The batched contract: one caller draw seeds the whole run
        // (per-group bases + init lanes + Metropolis streams),
        // results are bit-identical across ISAs and thread counts.
        // sampleLockstep fans the lockstep groups across the shared
        // WorkPool; each group writes its own disjoint result slots,
        // so this single-threaded aggregation is the only merge and
        // it happens contention-free after the barrier. Sorting and
        // stats aggregation mirror the WorkPool path below.
        const std::uint64_t base = rng.next();
        out = sampleLockstep(*compiled_, h_, w_, opts, base,
                             simd::activeIsa());
        SaStats total;
        total.reads = static_cast<std::uint64_t>(reads);
        total.read_groups = static_cast<std::uint64_t>(
            lockstepGroupCount(reads, opts.reads_groups));
        for (const SaResult &r : out) {
            total.sweeps += r.stats.sweeps;
            total.flips_attempted += r.stats.flips_attempted;
            total.flips_accepted += r.stats.flips_accepted;
        }
        std::stable_sort(out.begin(), out.end(),
                         [](const SaResult &a, const SaResult &b) {
                             return a.energy < b.energy;
                         });
        out.front().stats = total;
        return out;
    }

    // Aux-read seeds derive from the caller stream's NEXT output
    // without consuming it: read 0 runs on a copy of the caller Rng
    // whose final state is copied back, so the caller-visible stream
    // is that of a single read — and read 0's sample IS the
    // num_reads=1 sample, making best-of-N monotone by construction.
    Rng probe = rng;
    const std::uint64_t base = probe.next();
    Rng primary = rng;

    WorkPool::shared().runIndexed(reads, [&](int k) {
        if (k == 0) {
            out[0] = runChain(opts, primary);
        } else {
            Rng aux(base + static_cast<std::uint64_t>(k) *
                               kReadSeedStride);
            out[static_cast<std::size_t>(k)] = runChain(opts, aux);
        }
    });
    rng = primary;

    SaStats total;
    total.reads = static_cast<std::uint64_t>(reads);
    for (const SaResult &r : out) {
        total.sweeps += r.stats.sweeps;
        total.flips_attempted += r.stats.flips_attempted;
        total.flips_accepted += r.stats.flips_accepted;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SaResult &a, const SaResult &b) {
                         return a.energy < b.energy;
                     });
    out.front().stats = total;
    return out;
}

} // namespace hyqsat::anneal
