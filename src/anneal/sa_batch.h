/**
 * @file
 * Lockstep multi-read simulated annealing: N decorrelated reads
 * advance through ONE instruction stream over an SoA spin/local-field
 * layout, so num_reads pays for itself on a single core instead of
 * relying on WorkPool threads.
 *
 * Layout: spin i of read r lives at [i * lanes + r] as a double
 * (+1.0 / -1.0); the cached local fields use the same stride. Every
 * proposal computes all lanes' dE with one vectorized pass, decides
 * each lane with a shared per-lane rule, then applies the accepted
 * lanes with masked updates — the rejected lanes see bitwise no-ops.
 *
 * Randomness: a counter-based splitmix64 generator (BlockRng) fills
 * uniforms in cache-sized blocks instead of one draw per uphill
 * move, and the Metropolis accept test is a table compare
 * (precomputed exp(-x) cutoffs) with an exact exp() fallback only in
 * the rare ambiguous band between the table's bounds.
 *
 * Determinism contract (the batched path's own golden, distinct from
 * the frozen scalar sa_reference.h contract): results are a pure
 * function of (base seed, model, groups, options) and are
 * bit-identical across ISAs — the AVX2/AVX-512/NEON kernels mirror
 * the scalar fallback's per-lane operation order exactly and are
 * built without FMA contraction. Golden tables in tests/anneal pin the
 * BlockRng stream and the sampled spins per seed.
 */

#ifndef HYQSAT_ANNEAL_SA_BATCH_H
#define HYQSAT_ANNEAL_SA_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anneal/sa_sampler.h"
#include "util/simd.h"

namespace hyqsat::anneal {

/**
 * Counter-based splitmix64 uniform stream with block refill. Word k
 * of seed s is splitmix64_mix(s + (k+1) * golden); the sequential
 * take() interface serves them from a cache-sized buffer refilled in
 * one tight (auto-vectorizable) loop. Counter addressing keeps the
 * stream random-access for golden tests and makes the draw order
 * independent of block boundaries.
 */
class BlockRng
{
  public:
    static constexpr std::size_t kBlock = 1024;

    explicit BlockRng(std::uint64_t seed) : seed_(seed) {}

    /** Raw 64-bit word at stream position @p index. */
    std::uint64_t
    wordAt(std::uint64_t index) const
    {
        std::uint64_t z = seed_ + (index + 1) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, 1) at stream position @p index. */
    double
    uniformAt(std::uint64_t index) const
    {
        return static_cast<double>(wordAt(index) >> 11) * 0x1.0p-53;
    }

    /**
     * Copy the next @p count uniforms of the sequential stream into
     * @p out, refilling the block buffer as needed. count must be
     * <= kBlock. (Defined out of line in the portable TU so the
     * AVX2/NEON kernel TUs never emit their own — ISA-specialized —
     * copy of the refill loop; see sa_batch_kernels.h.)
     */
    void take(double *out, std::size_t count);

    /** Stream position of the next sequential draw. */
    std::uint64_t cursor() const { return base_ + pos_; }

  private:
    void refill();

    std::uint64_t seed_;
    std::uint64_t base_ = 0; ///< stream index of buf_[0]
    std::size_t filled_ = 0;
    std::size_t pos_ = 0;
    double buf_[kBlock];
};

/**
 * Run all reads of @p opts in lockstep over the compiled model and
 * return them in read order (not sorted), each with its own per-read
 * stats (reads=1; flips_attempted counts every proposal each lane
 * saw). @p h / @p w are the coefficient views (never null); @p base
 * seeds both the shared Metropolis stream and the per-lane init
 * streams (lane r draws its initial spins from BlockRng(base +
 * (r+1) * golden)). @p isa picks the kernel; an ISA this binary or
 * host cannot run silently degrades to the scalar fallback, which is
 * bit-identical by contract.
 */
std::vector<SaResult> sampleLockstep(const SaCompiled &compiled,
                                     const double *h, const double *w,
                                     const SaOptions &opts,
                                     std::uint64_t base, simd::Isa isa);

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_SA_BATCH_H
