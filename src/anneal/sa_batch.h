/**
 * @file
 * Lockstep multi-read simulated annealing: N decorrelated reads
 * advance through ONE instruction stream over an SoA spin/local-field
 * layout, so num_reads pays for itself on a single core instead of
 * relying on WorkPool threads.
 *
 * Layout: spin i of read r lives at [i * lanes + r] as a double
 * (+1.0 / -1.0); the cached local fields use the same stride. Every
 * proposal computes all lanes' dE with one vectorized pass, decides
 * each lane with a shared per-lane rule, then applies the accepted
 * lanes with masked updates — the rejected lanes see bitwise no-ops.
 *
 * Randomness: a counter-based splitmix64 generator (BlockRng) fills
 * uniforms in cache-sized blocks instead of one draw per uphill
 * move, and the Metropolis accept test is a table compare
 * (precomputed exp(-x) cutoffs) with an exact exp() fallback only in
 * the rare ambiguous band between the table's bounds.
 *
 * Two-level parallel scheduler (PR 10): num_reads is partitioned
 * into lockstep groups (SaOptions::reads_groups; auto = groups of up
 * to 8 lanes) and the groups fan out across the shared WorkPool, so
 * total throughput is roughly (vector speedup) x (core count). Each
 * group is an independent lockstep run over its own SoA buffers and
 * its own decorrelated BlockRng base derived purely from (seed,
 * group index); groups write disjoint result slots, so no merge
 * contention exists by construction.
 *
 * Determinism contract (the batched path's own golden, distinct from
 * the frozen scalar sa_reference.h contract): results are a pure
 * function of (base seed, model, groups, options) and are
 * bit-identical across ISAs — the AVX2/AVX-512/NEON kernels mirror
 * the scalar fallback's per-lane operation order exactly and are
 * built without FMA contraction — AND across thread counts: the
 * group partition and per-group seeds never depend on the pool size,
 * core count or scheduling interleaving, only on the options. Golden
 * tables in tests/anneal pin the BlockRng stream and the sampled
 * spins per seed.
 */

#ifndef HYQSAT_ANNEAL_SA_BATCH_H
#define HYQSAT_ANNEAL_SA_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anneal/sa_sampler.h"
#include "util/simd.h"

namespace hyqsat::anneal {

class WorkPool;

/**
 * Counter-based splitmix64 uniform stream with block refill. Word k
 * of seed s is splitmix64_mix(s + (k+1) * golden); the sequential
 * take() interface serves them from a cache-sized buffer refilled in
 * one tight (auto-vectorizable) loop. Counter addressing keeps the
 * stream random-access for golden tests and makes the draw order
 * independent of block boundaries.
 */
class BlockRng
{
  public:
    static constexpr std::size_t kBlock = 1024;

    explicit BlockRng(std::uint64_t seed) : seed_(seed) {}

    /** Raw 64-bit word at stream position @p index. */
    std::uint64_t
    wordAt(std::uint64_t index) const
    {
        std::uint64_t z = seed_ + (index + 1) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, 1) at stream position @p index. */
    double
    uniformAt(std::uint64_t index) const
    {
        return static_cast<double>(wordAt(index) >> 11) * 0x1.0p-53;
    }

    /**
     * Copy the next @p count uniforms of the sequential stream into
     * @p out, refilling the block buffer as needed. count must be
     * <= kBlock. (Defined out of line in the portable TU so the
     * AVX2/NEON kernel TUs never emit their own — ISA-specialized —
     * copy of the refill loop; see sa_batch_kernels.h.)
     */
    void take(double *out, std::size_t count);

    /** Stream position of the next sequential draw. */
    std::uint64_t cursor() const { return base_ + pos_; }

  private:
    void refill();

    std::uint64_t seed_;
    std::uint64_t base_ = 0; ///< stream index of buf_[0]
    std::size_t filled_ = 0;
    std::size_t pos_ = 0;
    double buf_[kBlock];
};

/**
 * Number of parallel lockstep groups a batched run of @p reads reads
 * uses under @p reads_groups (SaOptions::reads_groups). Pure in its
 * arguments: auto (<= 0) means groups of up to 8 lanes, an explicit
 * request is clamped to [1, reads]. The machine's core count, pool
 * size and ISA never enter — that is the cross-thread-count half of
 * the determinism contract.
 */
inline int
lockstepGroupCount(int reads, int reads_groups)
{
    if (reads < 1)
        reads = 1;
    int g = reads_groups > 0 ? reads_groups : (reads + 7) / 8;
    return g < 1 ? 1 : (g > reads ? reads : g);
}

/**
 * Decorrelated BlockRng base of lockstep group @p group under run
 * seed @p base. Group 0 keeps @p base verbatim (a single-group run
 * is bit-identical to the pre-scheduler path); later groups get a
 * full splitmix64 finalizer over a distinct odd stride — a plain
 * golden-ratio offset would land inside the lane-init seed family
 * (BlockRng streams whose seeds differ by k * golden are the same
 * stream shifted by k words).
 */
inline std::uint64_t
lockstepGroupSeed(std::uint64_t base, int group)
{
    if (group == 0)
        return base;
    std::uint64_t z =
        base + static_cast<std::uint64_t>(group) * 0xd1342543de82ef95ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Run all reads of @p opts in lockstep over the compiled model and
 * return them in read order (not sorted), each with its own per-read
 * stats (reads=1; flips_attempted counts every proposal each lane of
 * its group saw). @p h / @p w are the coefficient views (never
 * null); @p base seeds group 0's shared Metropolis stream and
 * per-lane init streams (lane r of a group draws its initial spins
 * from BlockRng(group_seed + (r+1) * golden)); further groups use
 * lockstepGroupSeed(base, g). @p isa picks the kernel; an ISA this
 * binary or host cannot run silently degrades to the scalar
 * fallback, which is bit-identical by contract.
 *
 * With more than one group (lockstepGroupCount) the groups fan out
 * across @p pool (nullptr = the shared process pool), each writing
 * its own disjoint slice of the result vector; the pool only decides
 * WHERE a group runs, never what it computes, so results are
 * bit-identical for any pool size including a dedicated
 * WorkPool(0).
 */
std::vector<SaResult> sampleLockstep(const SaCompiled &compiled,
                                     const double *h, const double *w,
                                     const SaOptions &opts,
                                     std::uint64_t base, simd::Isa isa,
                                     WorkPool *pool = nullptr);

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_SA_BATCH_H
