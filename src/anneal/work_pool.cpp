#include "anneal/work_pool.h"

#include <algorithm>
#include <cstdlib>

namespace hyqsat::anneal {

namespace {

int
defaultThreads()
{
    if (const char *env = std::getenv("HYQSAT_POOL_THREADS"))
        return std::clamp(std::atoi(env), 1, 64);
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    // Leave one core for the submitting thread; runIndexed callers
    // participate anyway, so a small pool only bounds parallelism,
    // never correctness.
    return std::clamp(hw - 1, 1, 16);
}

} // namespace

WorkPool &
WorkPool::shared()
{
    // Leaked on purpose: samplers may be destroyed during static
    // teardown and must still be able to reach the pool; the threads
    // die with the process.
    static WorkPool *pool = new WorkPool(defaultThreads());
    return *pool;
}

WorkPool::WorkPool(int threads)
{
    threads_.reserve(std::max(threads, 0));
    for (int i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkPool::~WorkPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
WorkPool::runOne(Batch &b, std::unique_lock<std::mutex> &lock)
{
    if (b.cancelled || b.next >= b.total)
        return false;
    const int index = b.next++;
    ++b.active;
    lock.unlock();
    try {
        (*b.fn)(index);
    } catch (...) {
        // Poison the batch so no further indices are claimed, and
        // wake the owner, whose unwind handler waits for the claims
        // already inside fn. (A throw on a pool thread still
        // escapes workerLoop and terminates — fn must only throw on
        // the runIndexed caller's own thread.)
        lock.lock();
        b.cancelled = true;
        --b.active;
        done_cv_.notify_all();
        throw;
    }
    lock.lock();
    --b.active;
    if (++b.done == b.total || (b.cancelled && b.active == 0))
        done_cv_.notify_all();
    return true;
}

void
WorkPool::unlink(Batch &b)
{
    for (auto it = batches_.begin(); it != batches_.end(); ++it) {
        if (*it == &b) {
            batches_.erase(it);
            break;
        }
    }
}

void
WorkPool::runIndexed(int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (n == 1 || threads_.empty()) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Batch batch;
    batch.fn = &fn;
    batch.total = n;

    std::unique_lock<std::mutex> lock(mutex_);
    batches_.push_back(&batch);
    work_cv_.notify_all();

    // Caller participation: claim indices until none are left, then
    // wait for helpers still running theirs. Guarantees progress
    // even when every pool thread is busy (nested fan-outs).
    try {
        while (runOne(batch, lock)) {
        }
        done_cv_.wait(lock, [&] { return batch.done == batch.total; });
    } catch (...) {
        // fn threw on this (the caller's) thread: runOne's handler
        // relocked and poisoned the batch, so helpers claim nothing
        // new. Wait out the claims still inside fn, then unlink the
        // stack-allocated batch before the frame unwinds — a
        // dangling deque entry would hand workers a dead pointer.
        done_cv_.wait(lock, [&] { return batch.active == 0; });
        unlink(batch);
        throw;
    }

    // The batch is drained (next == total), but may still sit in the
    // deque; remove it before the stack frame dies.
    unlink(batch);
}

void
WorkPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
WorkPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        // Priority: posted strand tasks first (they are latency
        // sensitive — an async pipeline is waiting), then open
        // fan-outs.
        if (!tasks_.empty()) {
            auto task = std::move(tasks_.front());
            tasks_.pop_front();
            lock.unlock();
            task();
            lock.lock();
            continue;
        }
        // Select under the continuously-held lock, then run: runOne
        // unlocks while calling fn, which may grow/shrink batches_,
        // so no deque iterator may be live across it.
        Batch *pick = nullptr;
        for (Batch *b : batches_) {
            if (!b->cancelled && b->next < b->total) {
                pick = b;
                break;
            }
        }
        if (pick) {
            runOne(*pick, lock);
            continue;
        }
        if (shutdown_)
            return;
        work_cv_.wait(lock, [this] {
            if (shutdown_ || !tasks_.empty())
                return true;
            for (Batch *b : batches_)
                if (!b->cancelled && b->next < b->total)
                    return true;
            return false;
        });
    }
}

} // namespace hyqsat::anneal
