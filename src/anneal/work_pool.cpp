#include "anneal/work_pool.h"

#include <algorithm>
#include <cstdlib>

namespace hyqsat::anneal {

namespace {

int
defaultThreads()
{
    if (const char *env = std::getenv("HYQSAT_POOL_THREADS"))
        return std::clamp(std::atoi(env), 1, 64);
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    // Leave one core for the submitting thread; runIndexed callers
    // participate anyway, so a small pool only bounds parallelism,
    // never correctness.
    return std::clamp(hw - 1, 1, 16);
}

} // namespace

WorkPool &
WorkPool::shared()
{
    // Leaked on purpose: samplers may be destroyed during static
    // teardown and must still be able to reach the pool; the threads
    // die with the process.
    static WorkPool *pool = new WorkPool(defaultThreads());
    return *pool;
}

WorkPool::WorkPool(int threads)
{
    threads_.reserve(std::max(threads, 0));
    for (int i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkPool::~WorkPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
WorkPool::runOne(Batch &b, std::unique_lock<std::mutex> &lock)
{
    if (b.next >= b.total)
        return false;
    const int index = b.next++;
    lock.unlock();
    (*b.fn)(index);
    lock.lock();
    if (++b.done == b.total)
        done_cv_.notify_all();
    return true;
}

void
WorkPool::runIndexed(int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (n == 1 || threads_.empty()) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Batch batch;
    batch.fn = &fn;
    batch.total = n;

    std::unique_lock<std::mutex> lock(mutex_);
    batches_.push_back(&batch);
    work_cv_.notify_all();

    // Caller participation: claim indices until none are left, then
    // wait for helpers still running theirs. Guarantees progress
    // even when every pool thread is busy (nested fan-outs).
    while (runOne(batch, lock)) {
    }
    done_cv_.wait(lock, [&] { return batch.done == batch.total; });

    // The batch is drained (next == total), but may still sit in the
    // deque; remove it before the stack frame dies.
    for (auto it = batches_.begin(); it != batches_.end(); ++it) {
        if (*it == &batch) {
            batches_.erase(it);
            break;
        }
    }
}

void
WorkPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
WorkPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        // Priority: posted strand tasks first (they are latency
        // sensitive — an async pipeline is waiting), then open
        // fan-outs.
        if (!tasks_.empty()) {
            auto task = std::move(tasks_.front());
            tasks_.pop_front();
            lock.unlock();
            task();
            lock.lock();
            continue;
        }
        // Select under the continuously-held lock, then run: runOne
        // unlocks while calling fn, which may grow/shrink batches_,
        // so no deque iterator may be live across it.
        Batch *pick = nullptr;
        for (Batch *b : batches_) {
            if (b->next < b->total) {
                pick = b;
                break;
            }
        }
        if (pick) {
            runOne(*pick, lock);
            continue;
        }
        if (shutdown_)
            return;
        work_cv_.wait(lock, [this] {
            if (shutdown_ || !tasks_.empty())
                return true;
            for (Batch *b : batches_)
                if (b->next < b->total)
                    return true;
            return false;
        });
    }
}

} // namespace hyqsat::anneal
