/**
 * @file
 * Frozen copy of the pre-CSR simulated-annealing sampler, kept as the
 * behavioral oracle for the hot-loop rewrite: the golden-seed test
 * asserts SaSampler(num_reads=1) is bit-identical to this sampler
 * (spins, energy, and post-sample RNG position), and bench/micro_anneal
 * uses it as the "naive" baseline. Header-only and deliberately
 * unoptimized — every delta re-scans the adjacency list. Do not edit
 * the algorithm: its point is to stay exactly what shipped.
 */

#ifndef HYQSAT_ANNEAL_SA_REFERENCE_H
#define HYQSAT_ANNEAL_SA_REFERENCE_H

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "anneal/sa_sampler.h"
#include "anneal/schedule.h"
#include "qubo/qubo.h"
#include "util/rng.h"

namespace hyqsat::anneal {

/** The legacy vector-of-vectors SA sampler (see file comment). */
class SaReferenceSampler
{
  public:
    explicit SaReferenceSampler(const qubo::IsingModel &model)
        : offset_(model.offset()), h_(model.fields()),
          adj_(model.numSpins())
    {
        for (const auto &[key, w] : model.couplingTerms()) {
            if (w == 0.0)
                continue;
            adj_[key.first()].emplace_back(key.second(), w);
            adj_[key.second()].emplace_back(key.first(), w);
        }
    }

    void
    setGroups(const std::vector<std::vector<int>> &groups)
    {
        groups_ = groups;
        group_of_.assign(numSpins(), -1);
        for (std::size_t g = 0; g < groups_.size(); ++g)
            for (int i : groups_[g])
                group_of_[i] = static_cast<int>(g);
    }

    SaResult
    sample(const SaOptions &opts, Rng &rng) const
    {
        const int n = numSpins();
        SaResult result;
        result.spins.resize(n);
        for (auto &s : result.spins)
            s = rng.chance(0.5) ? 1 : -1;

        const auto betas =
            geometricBetaSchedule(opts.beta_start, opts.beta_end,
                                  std::max(opts.sweeps, 1));
        for (const double beta : betas) {
            for (int i = 0; i < n; ++i) {
                const double delta =
                    -2.0 * result.spins[i] *
                    localField(result.spins, i);
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-beta * delta))
                    result.spins[i] = -result.spins[i];
            }
            for (std::size_t g = 0; g < groups_.size(); ++g) {
                const double delta =
                    groupFlipDelta(result.spins, static_cast<int>(g));
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-beta * delta)) {
                    for (int i : groups_[g])
                        result.spins[i] = -result.spins[i];
                }
            }
        }

        if (opts.greedy_finish) {
            bool improved = true;
            int guard = 0;
            while (improved && guard++ < 4 * n) {
                improved = false;
                for (int i = 0; i < n; ++i) {
                    const double delta =
                        -2.0 * result.spins[i] *
                        localField(result.spins, i);
                    if (delta < 0.0) {
                        result.spins[i] = -result.spins[i];
                        improved = true;
                    }
                }
                for (std::size_t g = 0; g < groups_.size(); ++g) {
                    const double delta = groupFlipDelta(
                        result.spins, static_cast<int>(g));
                    if (delta < 0.0) {
                        for (int i : groups_[g])
                            result.spins[i] = -result.spins[i];
                        improved = true;
                    }
                }
            }
        }

        result.energy = energy(result.spins);
        return result;
    }

    int numSpins() const { return static_cast<int>(h_.size()); }

    double
    energy(const std::vector<std::int8_t> &spins) const
    {
        double e = offset_;
        for (int i = 0; i < numSpins(); ++i) {
            e += h_[i] * spins[i];
            for (const auto &[j, w] : adj_[i])
                if (j > i)
                    e += w * spins[i] * spins[j];
        }
        return e;
    }

  private:
    double
    localField(const std::vector<std::int8_t> &s, int i) const
    {
        double f = h_[i];
        for (const auto &[j, w] : adj_[i])
            f += w * s[j];
        return f;
    }

    double
    groupFlipDelta(const std::vector<std::int8_t> &s, int group) const
    {
        double delta = 0.0;
        for (int i : groups_[group]) {
            double boundary = h_[i];
            for (const auto &[j, w] : adj_[i])
                if (group_of_[j] != group)
                    boundary += w * s[j];
            delta += -2.0 * s[i] * boundary;
        }
        return delta;
    }

    double offset_ = 0.0;
    std::vector<double> h_;
    std::vector<std::vector<std::pair<int, double>>> adj_;
    std::vector<std::vector<int>> groups_;
    std::vector<int> group_of_;
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_SA_REFERENCE_H
