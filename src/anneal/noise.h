/**
 * @file
 * Noise model for the simulated quantum annealer, covering the three
 * sources the paper discusses (§I, §IV-C): control noise on the
 * programmed coefficients (environment/crosstalk), thermal
 * excitation (finite annealing temperature) and readout error. The
 * §VI-G scalability study's "10% bit flipping" maps to
 * readout_flip_prob = 0.1.
 */

#ifndef HYQSAT_ANNEAL_NOISE_H
#define HYQSAT_ANNEAL_NOISE_H

namespace hyqsat::anneal {

/** Device noise parameters. */
struct NoiseModel
{
    /**
     * Gaussian std-dev added to every programmed h and J, relative
     * to the hardware coefficient range (D-Wave quotes ~2-3%
     * integrated control error).
     */
    double coefficient_sigma = 0.025;

    /** Probability a qubit reads out flipped. */
    double readout_flip_prob = 0.0;

    /**
     * Thermal noise: the sampler stops at this final inverse
     * temperature instead of descending to the ground state
     * (smaller = hotter = noisier).
     */
    double beta_final = 6.0;

    /** Sweeps per sample (device anneal-time proxy). */
    int sweeps = 512;

    /** @return a noise-free configuration (the §VI-B simulator). */
    static NoiseModel
    noiseFree()
    {
        NoiseModel m;
        m.coefficient_sigma = 0.0;
        m.readout_flip_prob = 0.0;
        m.beta_final = 8.0;
        m.sweeps = 256;
        return m;
    }

    /** @return the default noisy D-Wave 2000Q-like configuration. */
    static NoiseModel
    dwave2000q()
    {
        return {};
    }
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_NOISE_H
