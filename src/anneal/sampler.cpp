#include "anneal/sampler.h"

#include "anneal/async_sampler.h"
#include "anneal/batch_sampler.h"
#include "embed/hyqsat_embedder.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hyqsat::anneal {

namespace {

/**
 * CompiledSlot tag under which SaDirectSampler memoizes its compiled
 * logical model (distinct from the QuantumAnnealer's tags, which mix
 * graph identity and chain strength).
 */
constexpr std::uint64_t kSaDirectTag = 0x5ad17ec7c0de0001ull;

/** The slot riding on the request's cached embed result, if any. */
const embed::CompiledSlot *
requestSlot(const SampleRequest &request)
{
    return request.embedded ? &request.embedded->compiled : nullptr;
}

} // namespace

AnnealMetrics
AnnealMetrics::resolve(MetricsRegistry *registry)
{
    AnnealMetrics m;
    if (!registry)
        return m;
    m.sweeps = registry->counter("anneal.sweeps");
    m.flips_attempted = registry->counter("anneal.flips.attempted");
    m.flips_accepted = registry->counter("anneal.flips.accepted");
    m.reads = registry->counter("anneal.reads");
    m.read_groups = registry->counter("anneal.read_groups");
    m.sample_timer = registry->timer("anneal.sample");
    return m;
}

AnnealSample
Sampler::sampleNow(SampleRequest request)
{
    const std::uint64_t ticket = submit(std::move(request));
    std::vector<SampleCompletion> done;
    for (;;) {
        wait(done);
        for (auto &c : done) {
            if (c.ticket == ticket)
                return std::move(c.sample);
        }
        if (done.empty() && inFlight() == 0)
            panic("sampleNow: ticket %llu never completed",
                  static_cast<unsigned long long>(ticket));
        done.clear();
    }
}

std::uint64_t
SyncSampler::submit(SampleRequest request)
{
    Timer timer;
    SampleCompletion completion;
    completion.ticket = next_ticket_++;
    completion.sample = compute(request);
    completion.host_seconds = timer.seconds();
    done_.push_back(std::move(completion));
    return done_.back().ticket;
}

void
SyncSampler::poll(std::vector<SampleCompletion> &out)
{
    for (auto &c : done_)
        out.push_back(std::move(c));
    done_.clear();
}

void
SyncSampler::wait(std::vector<SampleCompletion> &out)
{
    poll(out);
}

QaSampler::QaSampler(const chimera::ChimeraGraph &graph,
                     QuantumAnnealer::Options opts, bool force_logical,
                     MetricsRegistry *metrics)
    : annealer_(graph, opts), force_logical_(force_logical),
      metrics_(AnnealMetrics::resolve(metrics))
{
}

AnnealSample
QaSampler::compute(const SampleRequest &request)
{
    MetricTimer::Scope scope(metrics_.sample_timer);
    const embed::CompiledSlot *slot = requestSlot(request);
    AnnealSample out;
    if (force_logical_ || !request.use_embedding)
        out = annealer_.sampleLogical(*request.problem, slot);
    else
        out = annealer_.sample(*request.problem, *request.embedding,
                               slot);
    metrics_.record(annealer_.lastRunStats());
    return out;
}

SaDirectSampler::SaDirectSampler(Options opts, MetricsRegistry *metrics)
    : opts_(opts), rng_(opts.seed),
      metrics_(AnnealMetrics::resolve(metrics))
{
}

AnnealSample
SaDirectSampler::compute(const SampleRequest &request)
{
    MetricTimer::Scope scope(metrics_.sample_timer);
    AnnealSample out;
    out.device_time_us = opts_.timing.sampleTimeUs(1);
    const qubo::EncodedProblem &problem = *request.problem;
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0)
        return out;

    // include_zero=false reproduces the legacy adjacency exactly
    // (no coefficient replay happens on this backend).
    const embed::CompiledSlot *slot = requestSlot(request);
    std::shared_ptr<const SaCompiled> compiled;
    if (slot) {
        compiled = std::static_pointer_cast<const SaCompiled>(
            slot->get(kSaDirectTag));
    }
    if (!compiled) {
        compiled = std::make_shared<const SaCompiled>(SaCompiled::build(
            quboToIsing(problem.normalized), /*include_zero=*/false));
        if (slot)
            slot->set(kSaDirectTag, compiled);
    }

    SaSampler sampler(std::move(compiled));
    const SaResult result = sampler.sample(opts_.sa, rng_);
    metrics_.record(result.stats);
    out.physical_energy = result.energy;
    for (int n = 0; n < num_nodes; ++n)
        out.node_bits[n] = result.spins[n] > 0;
    out.clause_energy = problem.clauseSpaceEnergy(out.node_bits);
    out.weighted_energy = problem.objective.energy(out.node_bits);
    return out;
}

const std::vector<std::string> &
samplerNames()
{
    static const std::vector<std::string> names = {
        "sync", "qa", "logical", "sa", "batch", "async",
    };
    return names;
}

std::unique_ptr<Sampler>
makeSampler(const SamplerSpec &spec, const chimera::ChimeraGraph &graph)
{
    const std::string &name = spec.name;
    if (name == "sync" || name == "qa" || name.empty()) {
        return std::make_unique<QaSampler>(graph, spec.annealer,
                                           /*force_logical=*/false,
                                           spec.metrics);
    }
    if (name == "logical") {
        return std::make_unique<QaSampler>(graph, spec.annealer,
                                           /*force_logical=*/true,
                                           spec.metrics);
    }
    if (name == "sa") {
        SaDirectSampler::Options opts;
        opts.sa.sweeps = spec.annealer.noise.sweeps;
        opts.sa.beta_end = spec.annealer.noise.beta_final;
        opts.sa.greedy_finish = spec.annealer.greedy_finish;
        opts.sa.num_reads = spec.annealer.num_reads;
        opts.sa.lockstep = spec.annealer.reads_batch;
        opts.sa.reads_groups = spec.annealer.reads_groups;
        opts.timing = spec.annealer.timing;
        opts.seed = spec.annealer.seed;
        return std::make_unique<SaDirectSampler>(opts, spec.metrics);
    }
    if (name == "batch") {
        BatchSampler::Options opts;
        opts.samples = spec.batch_samples;
        opts.annealer = spec.annealer;
        opts.metrics = spec.metrics;
        return std::make_unique<BatchSampler>(graph, opts);
    }
    if (name == "async" || name.rfind("async:", 0) == 0) {
        SamplerSpec inner_spec = spec;
        inner_spec.name =
            name == "async" ? "qa" : name.substr(std::string("async:").size());
        if (inner_spec.name.rfind("async", 0) == 0)
            fatal("sampler '%s': async wrappers do not nest", name.c_str());
        AsyncSampler::Options opts;
        opts.depth = spec.pipeline_depth;
        opts.rtt_us = spec.rtt_us;
        opts.stop = spec.stop;
        return std::make_unique<AsyncSampler>(
            makeSampler(inner_spec, graph), opts);
    }
    fatal("unknown sampler backend '%s' (known: sync, qa, logical, sa, "
          "batch, async, async:<backend>)",
          name.c_str());
    return nullptr; // unreachable
}

} // namespace hyqsat::anneal
