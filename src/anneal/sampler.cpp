#include "anneal/sampler.h"

#include "anneal/async_sampler.h"
#include "anneal/batch_sampler.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hyqsat::anneal {

AnnealSample
Sampler::sampleNow(SampleRequest request)
{
    const std::uint64_t ticket = submit(std::move(request));
    std::vector<SampleCompletion> done;
    for (;;) {
        wait(done);
        for (auto &c : done) {
            if (c.ticket == ticket)
                return std::move(c.sample);
        }
        if (done.empty() && inFlight() == 0)
            panic("sampleNow: ticket %llu never completed",
                  static_cast<unsigned long long>(ticket));
        done.clear();
    }
}

std::uint64_t
SyncSampler::submit(SampleRequest request)
{
    Timer timer;
    SampleCompletion completion;
    completion.ticket = next_ticket_++;
    completion.sample = compute(request);
    completion.host_seconds = timer.seconds();
    done_.push_back(std::move(completion));
    return done_.back().ticket;
}

void
SyncSampler::poll(std::vector<SampleCompletion> &out)
{
    for (auto &c : done_)
        out.push_back(std::move(c));
    done_.clear();
}

void
SyncSampler::wait(std::vector<SampleCompletion> &out)
{
    poll(out);
}

QaSampler::QaSampler(const chimera::ChimeraGraph &graph,
                     QuantumAnnealer::Options opts, bool force_logical)
    : annealer_(graph, opts), force_logical_(force_logical)
{
}

AnnealSample
QaSampler::compute(const SampleRequest &request)
{
    if (force_logical_ || !request.use_embedding)
        return annealer_.sampleLogical(*request.problem);
    return annealer_.sample(*request.problem, *request.embedding);
}

SaDirectSampler::SaDirectSampler(Options opts)
    : opts_(opts), rng_(opts.seed)
{
}

AnnealSample
SaDirectSampler::compute(const SampleRequest &request)
{
    AnnealSample out;
    out.device_time_us = opts_.timing.sampleTimeUs(1);
    const qubo::EncodedProblem &problem = *request.problem;
    const int num_nodes = problem.numNodes();
    out.node_bits.assign(num_nodes, false);
    if (num_nodes == 0)
        return out;

    const qubo::IsingModel logical = quboToIsing(problem.normalized);
    SaSampler sampler(logical);
    const SaResult result = sampler.sample(opts_.sa, rng_);
    out.physical_energy = result.energy;
    for (int n = 0; n < num_nodes; ++n)
        out.node_bits[n] = result.spins[n] > 0;
    out.clause_energy = problem.clauseSpaceEnergy(out.node_bits);
    out.weighted_energy = problem.objective.energy(out.node_bits);
    return out;
}

const std::vector<std::string> &
samplerNames()
{
    static const std::vector<std::string> names = {
        "sync", "qa", "logical", "sa", "batch", "async",
    };
    return names;
}

std::unique_ptr<Sampler>
makeSampler(const SamplerSpec &spec, const chimera::ChimeraGraph &graph)
{
    const std::string &name = spec.name;
    if (name == "sync" || name == "qa" || name.empty())
        return std::make_unique<QaSampler>(graph, spec.annealer);
    if (name == "logical") {
        return std::make_unique<QaSampler>(graph, spec.annealer,
                                           /*force_logical=*/true);
    }
    if (name == "sa") {
        SaDirectSampler::Options opts;
        opts.sa.sweeps = spec.annealer.noise.sweeps;
        opts.sa.beta_end = spec.annealer.noise.beta_final;
        opts.sa.greedy_finish = spec.annealer.greedy_finish;
        opts.timing = spec.annealer.timing;
        opts.seed = spec.annealer.seed;
        return std::make_unique<SaDirectSampler>(opts);
    }
    if (name == "batch") {
        BatchSampler::Options opts;
        opts.samples = spec.batch_samples;
        opts.annealer = spec.annealer;
        return std::make_unique<BatchSampler>(graph, opts);
    }
    if (name == "async" || name.rfind("async:", 0) == 0) {
        SamplerSpec inner_spec = spec;
        inner_spec.name =
            name == "async" ? "qa" : name.substr(std::string("async:").size());
        if (inner_spec.name.rfind("async", 0) == 0)
            fatal("sampler '%s': async wrappers do not nest", name.c_str());
        AsyncSampler::Options opts;
        opts.depth = spec.pipeline_depth;
        opts.rtt_us = spec.rtt_us;
        opts.stop = spec.stop;
        return std::make_unique<AsyncSampler>(
            makeSampler(inner_spec, graph), opts);
    }
    fatal("unknown sampler backend '%s' (known: sync, qa, logical, sa, "
          "batch, async, async:<backend>)",
          name.c_str());
    return nullptr; // unreachable
}

} // namespace hyqsat::anneal
