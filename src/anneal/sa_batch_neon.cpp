/**
 * @file
 * NEON lockstep kernel (aarch64). Same structure and bit-equality
 * contract as the AVX2 kernel, over 2-wide float64x2_t vectors: only
 * the elementwise arithmetic is vectorized, the per-lane decisions
 * run through the shared decideLanes(). Built without FMA
 * contraction (-ffp-contract=off) so vmulq/vaddq stay separate
 * instructions, matching the scalar fallback bit for bit.
 */

#include <arm_neon.h>

#include "anneal/sa_batch_kernels.h"

namespace hyqsat::anneal::detail {

namespace {

inline float64x2_t
andPd(float64x2_t a, uint64x2_t m)
{
    return vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(a), m));
}

inline float64x2_t
xorSignMasked(float64x2_t s, uint64x2_t m)
{
    const uint64x2_t sign = vdupq_n_u64(0x8000000000000000ull);
    return vreinterpretq_f64_u64(veorq_u64(
        vreinterpretq_u64_f64(s), vandq_u64(m, sign)));
}

} // namespace

void
runLockstepNeon(BatchCtx &ctx)
{
    const SaCompiled &c = *ctx.c;
    const int n = ctx.n;
    const int lanes = ctx.lanes;
    const int vecs = lanes / 2;
    const std::size_t num_groups = c.groups.size();
    const float64x2_t minus2 = vdupq_n_f64(-2.0);

    const auto maskVec = [&](int v) {
        return vld1q_u64(ctx.mask + 2 * v);
    };

    const auto flipDeltas = [&](int i) {
        const double *s =
            ctx.spins + static_cast<std::size_t>(i) * lanes;
        const double *f =
            ctx.fields + static_cast<std::size_t>(i) * lanes;
        for (int v = 0; v < vecs; ++v) {
            const float64x2_t vs = vld1q_f64(s + 2 * v);
            const float64x2_t vf = vld1q_f64(f + 2 * v);
            vst1q_f64(ctx.delta + 2 * v,
                      vmulq_f64(vmulq_f64(vs, minus2), vf));
        }
    };

    // Masked update term t = (2 * s) & mask hoisted out of the
    // neighbor loop, exactly as in the scalar and AVX2 kernels (the
    // ×2 is exact, so w * t rounds identically to (2w) * s).
    const float64x2_t two = vdupq_n_f64(2.0);

    const auto loadUpdateTerm = [&](const double *s) {
        for (int v = 0; v < vecs; ++v) {
            vst1q_f64(ctx.tmp + 2 * v,
                      andPd(vmulq_f64(two, vld1q_f64(s + 2 * v)),
                            maskVec(v)));
        }
    };

    const auto scatterUpdates = [&](int i) {
        for (std::int32_t k = c.csr.row_ptr[i];
             k < c.csr.row_ptr[i + 1]; ++k) {
            const float64x2_t vw = vdupq_n_f64(ctx.w[k]);
            double *fj = ctx.fields +
                         static_cast<std::size_t>(c.csr.col[k]) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const float64x2_t upd =
                    vmulq_f64(vw, vld1q_f64(ctx.tmp + 2 * v));
                vst1q_f64(fj + 2 * v,
                          vsubq_f64(vld1q_f64(fj + 2 * v), upd));
            }
        }
    };

    const auto flipSpins = [&](double *s) {
        for (int v = 0; v < vecs; ++v) {
            vst1q_f64(s + 2 * v,
                      xorSignMasked(vld1q_f64(s + 2 * v), maskVec(v)));
        }
    };

    const auto applyFlip = [&](int i) {
        double *s = ctx.spins + static_cast<std::size_t>(i) * lanes;
        loadUpdateTerm(s);
        scatterUpdates(i);
        flipSpins(s);
    };

    const auto groupDeltas = [&](int g) {
        for (int v = 0; v < vecs; ++v)
            vst1q_f64(ctx.delta + 2 * v, vdupq_n_f64(0.0));
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            const double *f =
                ctx.fields + static_cast<std::size_t>(i) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const float64x2_t vd = vmulq_f64(
                    vmulq_f64(vld1q_f64(s + 2 * v), minus2),
                    vld1q_f64(f + 2 * v));
                vst1q_f64(ctx.delta + 2 * v,
                          vaddq_f64(vld1q_f64(ctx.delta + 2 * v), vd));
            }
        }
        for (std::int32_t e = c.edge_ptr[g]; e < c.edge_ptr[g + 1];
             ++e) {
            const float64x2_t vw4 =
                vdupq_n_f64(4.0 * ctx.w[c.edge_slot[e]]);
            const double *su =
                ctx.spins +
                static_cast<std::size_t>(c.edge_u[e]) * lanes;
            const double *sv =
                ctx.spins +
                static_cast<std::size_t>(c.edge_v[e]) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const float64x2_t t = vmulq_f64(
                    vld1q_f64(su + 2 * v), vld1q_f64(sv + 2 * v));
                vst1q_f64(
                    ctx.delta + 2 * v,
                    vaddq_f64(vld1q_f64(ctx.delta + 2 * v),
                              vmulq_f64(t, vw4)));
            }
        }
    };

    const auto applyGroup = [&](int g) {
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            loadUpdateTerm(s);
            scatterUpdates(i);
        }
        for (int i : c.groups[static_cast<std::size_t>(g)])
            flipSpins(ctx.spins + static_cast<std::size_t>(i) * lanes);
    };

    for (int sweep = 0; sweep < ctx.sweeps; ++sweep) {
        const double beta = ctx.betas[sweep];
        for (int i = 0; i < n; ++i) {
            flipDeltas(i);
            if (decideLanes(ctx, beta, /*metropolis=*/true))
                applyFlip(i);
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            groupDeltas(static_cast<int>(g));
            if (decideLanes(ctx, beta, /*metropolis=*/true))
                applyGroup(static_cast<int>(g));
        }
    }

    if (ctx.greedy) {
        bool improved = true;
        int guard = 0;
        while (improved && guard++ < 4 * n) {
            improved = false;
            for (int i = 0; i < n; ++i) {
                flipDeltas(i);
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyFlip(i);
                    improved = true;
                }
            }
            for (std::size_t g = 0; g < num_groups; ++g) {
                groupDeltas(static_cast<int>(g));
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyGroup(static_cast<int>(g));
                    improved = true;
                }
            }
        }
    }
}

} // namespace hyqsat::anneal::detail
