/**
 * @file
 * AVX-512 lockstep kernel. Same structure and bit-equality contract
 * as the AVX2 kernel, over 8-wide __m512d vectors — at the default
 * 8-lane batch the whole read set is ONE register, so every
 * elementwise pass runs once per proposal instead of twice, and the
 * per-lane decisions come out of the compare instructions as mask
 * registers directly (no movemask shuffling). Compiled in its own
 * translation unit with -mavx512f -mavx512dq -ffp-contract=off; the
 * dispatcher only calls in here after a runtime CPU check AND when
 * the padded lane count is a multiple of 8 (narrower batches keep
 * the lane-count-dependent uniform stream of the 4-lane quantum and
 * run on the AVX2 or scalar kernel instead).
 *
 * No FMA intrinsics anywhere — multiply and add stay separate
 * instructions so every lane computes bit-identically to
 * runLockstepScalar. The zero-temperature greedy decide runs through
 * the shared decideLanes(); the Metropolis decide is re-implemented
 * with 512-bit compares and table gathers, pinned to the shared rule
 * by the bit-equality tests in tests/anneal.
 */

#include <immintrin.h>

#include <algorithm>

#include "anneal/sa_batch_kernels.h"

namespace hyqsat::anneal::detail {

void
runLockstepAvx512(BatchCtx &ctx)
{
    const SaCompiled &c = *ctx.c;
    const int n = ctx.n;
    const int lanes = ctx.lanes;
    const int reads = ctx.reads;
    const int vecs = lanes / 8;
    const std::size_t num_groups = c.groups.size();
    const __m512d minus2 = _mm512_set1_pd(-2.0);
    const __m512d two = _mm512_set1_pd(2.0);
    const __m512d zero = _mm512_setzero_pd();
    const __m512d one = _mm512_set1_pd(1.0);
    const __m512i sign = _mm512_set1_epi64(
        static_cast<long long>(0x8000000000000000ull));

    // Real-lane mask bits (1 for lanes < reads) for 8-lane vector v.
    const auto realK = [&](int v) {
        const int live = std::clamp(reads - 8 * v, 0, 8);
        return static_cast<__mmask8>((1u << live) - 1u);
    };

    // Accept mask for a vector, as bits (from the ~0/0 words the
    // shared decide rule stores in ctx.mask).
    const auto acceptK = [&](int v) {
        const __m512i m = _mm512_loadu_si512(ctx.mask + 8 * v);
        return _mm512_test_epi64_mask(m, m);
    };

    /**
     * Metropolis decide for one proposal, all lanes: identical
     * decisions, stream consumption and counters to the shared
     * decideLanes(ctx, beta, true). Returns whether any lane
     * accepted.
     */
    const auto decideMetropolis = [&](double beta) {
        ++ctx.attempts;

        unsigned up = 0;
        for (int v = 0; v < vecs; ++v) {
            const __m512d vd = _mm512_loadu_pd(ctx.delta + 8 * v);
            up |= _mm512_mask_cmp_pd_mask(realK(v), vd, zero,
                                          _CMP_GT_OQ);
        }
        if (up == 0) {
            // Every real lane downhill or flat: all accept, and the
            // shared stream is untouched (the consumption rule).
            for (int v = 0; v < vecs; ++v) {
                const __mmask8 m = realK(v);
                _mm512_storeu_si512(
                    ctx.mask + 8 * v,
                    _mm512_maskz_set1_epi64(m, -1));
                _mm512_storeu_pd(
                    ctx.accepted + 8 * v,
                    _mm512_mask_add_pd(
                        _mm512_loadu_pd(ctx.accepted + 8 * v), m,
                        _mm512_loadu_pd(ctx.accepted + 8 * v), one));
            }
            return true;
        }

        ctx.rng->take(ctx.uniforms, static_cast<std::size_t>(lanes));
        const double *table = acceptTable();
        const __m512d vbeta = _mm512_set1_pd(beta);
        const __m512d vstep = _mm512_set1_pd(kAcceptTableStep);
        const __m512d vtop =
            _mm512_set1_pd(static_cast<double>(kAcceptTableN));
        unsigned any_ambiguous = 0;
        unsigned acc_bits = 0;
        for (int v = 0; v < vecs; ++v) {
            const __m512d vd = _mm512_loadu_pd(ctx.delta + 8 * v);
            const __m512d vu = _mm512_loadu_pd(ctx.uniforms + 8 * v);
            __m512d scaled =
                _mm512_mul_pd(_mm512_mul_pd(vbeta, vd), vstep);
            scaled = _mm512_max_pd(scaled, zero);
            scaled = _mm512_min_pd(scaled, vtop);
            const __m256i j = _mm512_cvttpd_epi32(scaled);
            const __m512d hi = _mm512_i32gather_pd(j, table, 8);
            const __m512d lo = _mm512_i32gather_pd(
                _mm256_add_epi32(j, _mm256_set1_epi32(1)), table, 8);
            const __mmask8 down =
                _mm512_cmp_pd_mask(vd, zero, _CMP_LE_OQ);
            const __mmask8 below_lo =
                _mm512_cmp_pd_mask(vu, lo, _CMP_LT_OQ);
            const __mmask8 below_hi =
                _mm512_cmp_pd_mask(vu, hi, _CMP_LT_OQ);
            const __mmask8 sure = down | below_lo;
            const __mmask8 m = realK(v) & sure;
            _mm512_storeu_si512(ctx.mask + 8 * v,
                                _mm512_maskz_set1_epi64(m, -1));
            _mm512_storeu_pd(
                ctx.accepted + 8 * v,
                _mm512_mask_add_pd(
                    _mm512_loadu_pd(ctx.accepted + 8 * v), m,
                    _mm512_loadu_pd(ctx.accepted + 8 * v), one));
            any_ambiguous |=
                static_cast<unsigned>(realK(v) & below_hi &
                                      static_cast<__mmask8>(~sure));
            acc_bits |= m;
        }
        if (any_ambiguous != 0) {
            // Rare: a uniform landed between the table bounds — pay
            // the exact exp(), via the shared fixup rule.
            acc_bits |= resolveAmbiguousLanes(ctx, beta) != 0;
        }
        return acc_bits != 0;
    };

    const auto flipDeltas = [&](int i) {
        const double *s =
            ctx.spins + static_cast<std::size_t>(i) * lanes;
        const double *f =
            ctx.fields + static_cast<std::size_t>(i) * lanes;
        for (int v = 0; v < vecs; ++v) {
            const __m512d vs = _mm512_loadu_pd(s + 8 * v);
            const __m512d vf = _mm512_loadu_pd(f + 8 * v);
            _mm512_storeu_pd(
                ctx.delta + 8 * v,
                _mm512_mul_pd(_mm512_mul_pd(vs, minus2), vf));
        }
    };

    // Masked update term t = (2 * s) & mask hoisted out of the
    // neighbor loop, as in the other kernels (the ×2 is exact, so
    // w * t rounds identically to (2w) * s; a zeroed lane is +0.0
    // either way since s is ±1).
    const auto loadUpdateTerm = [&](const double *s) {
        for (int v = 0; v < vecs; ++v) {
            const __m512d vs = _mm512_loadu_pd(s + 8 * v);
            _mm512_storeu_pd(
                ctx.tmp + 8 * v,
                _mm512_maskz_mul_pd(acceptK(v), two, vs));
        }
    };

    const auto scatterUpdates = [&](int i) {
        for (std::int32_t k = c.csr.row_ptr[i];
             k < c.csr.row_ptr[i + 1]; ++k) {
            const __m512d vw = _mm512_set1_pd(ctx.w[k]);
            double *fj = ctx.fields +
                         static_cast<std::size_t>(c.csr.col[k]) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const __m512d upd = _mm512_mul_pd(
                    vw, _mm512_loadu_pd(ctx.tmp + 8 * v));
                _mm512_storeu_pd(
                    fj + 8 * v,
                    _mm512_sub_pd(_mm512_loadu_pd(fj + 8 * v), upd));
            }
        }
    };

    const auto flipSpins = [&](double *s) {
        for (int v = 0; v < vecs; ++v) {
            const __m512i vs = _mm512_loadu_si512(s + 8 * v);
            const __m512i m = _mm512_loadu_si512(ctx.mask + 8 * v);
            _mm512_storeu_si512(
                s + 8 * v,
                _mm512_xor_si512(vs, _mm512_and_si512(m, sign)));
        }
    };

    const auto applyFlip = [&](int i) {
        double *s = ctx.spins + static_cast<std::size_t>(i) * lanes;
        loadUpdateTerm(s);
        scatterUpdates(i);
        flipSpins(s);
    };

    const auto groupDeltas = [&](int g) {
        for (int v = 0; v < vecs; ++v)
            _mm512_storeu_pd(ctx.delta + 8 * v, _mm512_setzero_pd());
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            const double *f =
                ctx.fields + static_cast<std::size_t>(i) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const __m512d vd = _mm512_mul_pd(
                    _mm512_mul_pd(_mm512_loadu_pd(s + 8 * v), minus2),
                    _mm512_loadu_pd(f + 8 * v));
                _mm512_storeu_pd(
                    ctx.delta + 8 * v,
                    _mm512_add_pd(_mm512_loadu_pd(ctx.delta + 8 * v),
                                  vd));
            }
        }
        for (std::int32_t e = c.edge_ptr[g]; e < c.edge_ptr[g + 1];
             ++e) {
            const __m512d vw4 =
                _mm512_set1_pd(4.0 * ctx.w[c.edge_slot[e]]);
            const double *su =
                ctx.spins +
                static_cast<std::size_t>(c.edge_u[e]) * lanes;
            const double *sv =
                ctx.spins +
                static_cast<std::size_t>(c.edge_v[e]) * lanes;
            for (int v = 0; v < vecs; ++v) {
                const __m512d t = _mm512_mul_pd(
                    _mm512_loadu_pd(su + 8 * v),
                    _mm512_loadu_pd(sv + 8 * v));
                _mm512_storeu_pd(
                    ctx.delta + 8 * v,
                    _mm512_add_pd(_mm512_loadu_pd(ctx.delta + 8 * v),
                                  _mm512_mul_pd(t, vw4)));
            }
        }
    };

    const auto applyGroup = [&](int g) {
        for (int i : c.groups[static_cast<std::size_t>(g)]) {
            const double *s =
                ctx.spins + static_cast<std::size_t>(i) * lanes;
            loadUpdateTerm(s);
            scatterUpdates(i);
        }
        for (int i : c.groups[static_cast<std::size_t>(g)])
            flipSpins(ctx.spins + static_cast<std::size_t>(i) * lanes);
    };

    for (int sweep = 0; sweep < ctx.sweeps; ++sweep) {
        const double beta = ctx.betas[sweep];
        for (int i = 0; i < n; ++i) {
            flipDeltas(i);
            if (decideMetropolis(beta))
                applyFlip(i);
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            groupDeltas(static_cast<int>(g));
            if (decideMetropolis(beta))
                applyGroup(static_cast<int>(g));
        }
    }

    if (ctx.greedy) {
        bool improved = true;
        int guard = 0;
        while (improved && guard++ < 4 * n) {
            improved = false;
            for (int i = 0; i < n; ++i) {
                flipDeltas(i);
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyFlip(i);
                    improved = true;
                }
            }
            for (std::size_t g = 0; g < num_groups; ++g) {
                groupDeltas(static_cast<int>(g));
                if (decideLanes(ctx, 0.0, /*metropolis=*/false)) {
                    applyGroup(static_cast<int>(g));
                    improved = true;
                }
            }
        }
    }
}

} // namespace hyqsat::anneal::detail
