#include "anneal/async_sampler.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "anneal/work_pool.h"
#include "util/timer.h"

namespace hyqsat::anneal {

AsyncSampler::AsyncSampler(std::unique_ptr<Sampler> inner, Options opts)
    : inner_(std::move(inner)), opts_(opts)
{
    opts_.depth = std::max(opts_.depth, 2);
}

AsyncSampler::~AsyncSampler()
{
    // Stop accepting strand turns and wait for a running one to
    // retire; queued-but-unprocessed jobs are abandoned with it.
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
    done_cv_.wait(lock, [this] { return !strand_active_; });
}

std::uint64_t
AsyncSampler::submit(SampleRequest request)
{
    std::uint64_t ticket;
    bool arm = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ticket = next_ticket_++;
        queue_.push_back(Job{ticket, std::move(request)});
        ++in_flight_;
        ++uncompleted_;
        if (!strand_active_) {
            strand_active_ = true;
            arm = true;
        }
    }
    // At most one drain task exists at a time: that is what makes
    // the pool a serial FIFO strand for this sampler.
    if (arm)
        WorkPool::shared().post([this] { drainLoop(); });
    return ticket;
}

void
AsyncSampler::poll(std::vector<SampleCompletion> &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ -= static_cast<int>(done_.size());
    for (auto &c : done_)
        out.push_back(std::move(c));
    done_.clear();
}

void
AsyncSampler::wait(std::vector<SampleCompletion> &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto ready = [this] {
        return !done_.empty() || uncompleted_ == 0;
    };
    if (opts_.stop) {
        // Cancellation point: bounded sleeps so a stop request is
        // observed within one poll interval even when the inner
        // sampler is stuck on a long job.
        const auto interval = std::chrono::duration<double, std::micro>(
            std::max(opts_.stop_poll_us, 1.0));
        while (!ready() && !opts_.stop->stopRequested())
            done_cv_.wait_for(lock, interval);
    } else {
        done_cv_.wait(lock, ready);
    }
    in_flight_ -= static_cast<int>(done_.size());
    for (auto &c : done_)
        out.push_back(std::move(c));
    done_.clear();
}

int
AsyncSampler::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
}

void
AsyncSampler::drainLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (shutdown_ || queue_.empty()) {
            strand_active_ = false;
            // Final notify under the lock: the destructor is
            // released by !strand_active_ and may destroy *this the
            // moment it can observe it (including via a spurious
            // wakeup between an unlock and a late notify), so
            // done_cv_ must not be touched after the mutex is
            // released here.
            done_cv_.notify_all();
            lock.unlock();
            return;
        }
        Job job = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();

        // Cooperative cancellation: once the stop token trips every
        // completion would be discarded by the (stopping) consumer,
        // so queued jobs are dropped instead of computed. Dropped
        // jobs are never delivered — only wait()'s uncompleted_
        // accounting needs them retired.
        if (opts_.stop && opts_.stop->stopRequested()) {
            lock.lock();
            --uncompleted_;
            lock.unlock();
            done_cv_.notify_all();
            lock.lock();
            continue;
        }

        // The inner sampler is synchronous and only ever touched by
        // the (unique) active strand task, so its Rng needs no
        // locking.
        Timer timer;
        AnnealSample sample = inner_->sampleNow(std::move(job.request));
        const double host_s = timer.seconds();
        if (opts_.rtt_us > 0.0 &&
            !(opts_.stop && opts_.stop->stopRequested())) {
            std::this_thread::sleep_for(std::chrono::duration<double,
                                        std::micro>(opts_.rtt_us));
        }

        lock.lock();
        SampleCompletion completion;
        completion.ticket = job.ticket;
        completion.sample = std::move(sample);
        completion.host_seconds = host_s;
        done_.push_back(std::move(completion));
        --uncompleted_;
        lock.unlock();
        done_cv_.notify_all();
        lock.lock();
    }
}

} // namespace hyqsat::anneal
