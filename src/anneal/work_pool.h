/**
 * @file
 * Small shared thread pool for host-side sampling parallelism: the
 * multi-read SA chains, the BatchSampler's best-of-N racing and the
 * AsyncSampler's pipeline strand all draw from one process-wide set
 * of threads instead of spawning their own (PR 5; previously the
 * batch and async samplers each owned dedicated threads).
 *
 * Two primitives:
 *
 *  - runIndexed(n, fn): run fn(0..n-1), caller-participating. The
 *    caller claims indices alongside the pool threads and only
 *    returns once every index has finished, so nested use (a batch
 *    worker whose annealer fans out multi-read chains) can never
 *    deadlock — with zero free pool threads the call degrades to a
 *    serial loop on the caller.
 *
 *  - post(fn): fire-and-forget task for serial strands (the
 *    AsyncSampler's FIFO drain). Never blocks the caller.
 *
 * Pool size: min(16, hardware_concurrency - 1), at least 1;
 * HYQSAT_POOL_THREADS overrides (clamped to >= 1: posted strand
 * tasks need at least one thread to run on).
 */

#ifndef HYQSAT_ANNEAL_WORK_POOL_H
#define HYQSAT_ANNEAL_WORK_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hyqsat::anneal {

/** Process-wide work-stealing helper pool (see file comment). */
class WorkPool
{
  public:
    /** The shared process-wide instance (created on first use). */
    static WorkPool &shared();

    /** Dedicated pool with @p threads helpers (tests). */
    explicit WorkPool(int threads);
    ~WorkPool();

    WorkPool(const WorkPool &) = delete;
    WorkPool &operator=(const WorkPool &) = delete;

    /**
     * Run fn(i) for every i in [0, n). The caller participates:
     * indices are claimed from a shared atomic cursor by the caller
     * and any free pool threads; returns when all n calls finished.
     * @p fn must be safe to invoke concurrently for distinct i.
     */
    void runIndexed(int n, const std::function<void(int)> &fn);

    /** Enqueue a detached task; runs on some pool thread. */
    void post(std::function<void()> task);

    int numThreads() const { return static_cast<int>(threads_.size()); }

  private:
    /** One caller-participating fan-out in flight. */
    struct Batch
    {
        const std::function<void(int)> *fn = nullptr;
        int total = 0;
        int next = 0; ///< next unclaimed index (guarded by pool mutex)
        int done = 0; ///< finished calls (guarded by pool mutex)
        int active = 0; ///< claims currently inside fn (pool mutex)
        bool cancelled = false; ///< fn threw; no further claims
    };

    void workerLoop();

    /** Unlink @p b from batches_ (mutex must be held). */
    void unlink(Batch &b);

    /** Claim-and-run one index of @p b; true if one was claimed. */
    bool runOne(Batch &b, std::unique_lock<std::mutex> &lock);

    std::mutex mutex_;
    std::condition_variable work_cv_; ///< wakes pool threads
    std::condition_variable done_cv_; ///< wakes runIndexed callers
    std::deque<Batch *> batches_;     ///< open fan-outs (not owned)
    std::deque<std::function<void()>> tasks_; ///< posted strand tasks
    bool shutdown_ = false;
    std::vector<std::thread> threads_;
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_WORK_POOL_H
