/**
 * @file
 * Annealing schedules: inverse-temperature ramps for the simulated
 * annealing sampler that stands in for the quantum annealer.
 */

#ifndef HYQSAT_ANNEAL_SCHEDULE_H
#define HYQSAT_ANNEAL_SCHEDULE_H

#include <cmath>
#include <vector>

namespace hyqsat::anneal {

/** Geometric beta ramp from beta_start to beta_end over n sweeps. */
inline std::vector<double>
geometricBetaSchedule(double beta_start, double beta_end, int sweeps)
{
    std::vector<double> betas(sweeps);
    if (sweeps == 1) {
        betas[0] = beta_end;
        return betas;
    }
    const double ratio =
        std::pow(beta_end / beta_start,
                 1.0 / static_cast<double>(sweeps - 1));
    double beta = beta_start;
    for (int i = 0; i < sweeps; ++i) {
        betas[i] = beta;
        beta *= ratio;
    }
    return betas;
}

/** Linear beta ramp from beta_start to beta_end over n sweeps. */
inline std::vector<double>
linearBetaSchedule(double beta_start, double beta_end, int sweeps)
{
    std::vector<double> betas(sweeps);
    for (int i = 0; i < sweeps; ++i) {
        const double t =
            sweeps == 1 ? 1.0
                        : static_cast<double>(i) /
                              static_cast<double>(sweeps - 1);
        betas[i] = beta_start + t * (beta_end - beta_start);
    }
    return betas;
}

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_SCHEDULE_H
