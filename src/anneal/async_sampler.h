/**
 * @file
 * Asynchronous pipeline wrapper: runs any inner Sampler on a worker
 * thread so the hybrid loop can keep iterating while a sample is in
 * flight. This is the software model of hiding the D-Wave 2000Q's
 * 130 us sample latency (and, for a future remote QPU client, the
 * network round trip) inside the CDCL warm-up window.
 *
 * The request queue is a serial *strand* on the process-wide
 * WorkPool: at most one drain task is in flight at a time, so jobs
 * execute strictly in FIFO order on one thread at a time — a real
 * QPU is a single serially-scheduled device, so deeper parallelism
 * would misrepresent it; depth buys pipelining, not concurrency. An
 * optional modeled round-trip latency is slept on the strand to
 * emulate a remote device.
 */

#ifndef HYQSAT_ANNEAL_ASYNC_SAMPLER_H
#define HYQSAT_ANNEAL_ASYNC_SAMPLER_H

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "anneal/sampler.h"
#include "util/cancel.h"

namespace hyqsat::anneal {

/** Strand-on-pool pipeline around a synchronous sampler. */
class AsyncSampler : public Sampler
{
  public:
    struct Options
    {
        /** Max in-flight submissions (clamped to >= 2). */
        int depth = 2;

        /** Modeled network round trip slept per sample (us). */
        double rtt_us = 0.0;

        /**
         * Cooperative cancellation: when set, wait() polls the token
         * every stop_poll_us and returns (possibly empty-handed) once
         * it trips, so a racing portfolio never hangs on a losing
         * worker's in-flight sample. poll()/submit() never block and
         * need no token.
         */
        const StopToken *stop = nullptr;

        /** wait() poll interval while a stop token is attached. */
        double stop_poll_us = 500.0;
    };

    AsyncSampler(std::unique_ptr<Sampler> inner, Options opts);
    ~AsyncSampler() override;

    const char *name() const override { return "async"; }
    int capacity() const override { return opts_.depth; }
    std::uint64_t submit(SampleRequest request) override;
    void poll(std::vector<SampleCompletion> &out) override;
    void wait(std::vector<SampleCompletion> &out) override;
    int inFlight() const override;

    Sampler &inner() { return *inner_; }

  private:
    struct Job
    {
        std::uint64_t ticket;
        SampleRequest request;
    };

    /**
     * One strand turn: process queued jobs until the queue is empty
     * (or shutdown), then retire the strand. Runs on a pool thread;
     * submit() re-arms it when work arrives with no strand active.
     */
    void drainLoop();

    std::unique_ptr<Sampler> inner_;
    Options opts_;

    mutable std::mutex mutex_;
    std::condition_variable done_cv_; ///< signals wait() / the dtor
    std::deque<Job> queue_;
    std::vector<SampleCompletion> done_;
    int in_flight_ = 0;   ///< submitted - harvested
    int uncompleted_ = 0; ///< submitted - completed
    std::uint64_t next_ticket_ = 1;
    bool shutdown_ = false;
    bool strand_active_ = false; ///< a drain task is posted/running
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_ASYNC_SAMPLER_H
