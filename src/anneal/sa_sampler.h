/**
 * @file
 * Simulated-annealing sampler over an arbitrary Ising model. This is
 * the computational stand-in for the quantum annealing device (the
 * same role dwave-neal plays for the paper's noise-free simulator):
 * it receives the physical Ising problem and returns one sample of
 * spins plus its energy.
 */

#ifndef HYQSAT_ANNEAL_SA_SAMPLER_H
#define HYQSAT_ANNEAL_SA_SAMPLER_H

#include <cstdint>
#include <vector>

#include "qubo/qubo.h"
#include "util/rng.h"

namespace hyqsat::anneal {

/** Sampler knobs. */
struct SaOptions
{
    /** Metropolis sweeps per sample. */
    int sweeps = 128;

    /** Inverse-temperature ramp endpoints. */
    double beta_start = 0.1;
    double beta_end = 5.0;

    /**
     * Run a final zero-temperature descent (flip while any flip
     * lowers energy). The noise-free simulator enables this; a noisy
     * device sample does not.
     */
    bool greedy_finish = true;
};

/** One sample. */
struct SaResult
{
    std::vector<std::int8_t> spins;
    double energy = 0.0;
};

/** Reusable SA sampler for a fixed Ising model. */
class SaSampler
{
  public:
    /** Preprocess @p model into adjacency lists. */
    explicit SaSampler(const qubo::IsingModel &model);

    /**
     * Register spin groups (e.g. the qubit chains of an embedding).
     * Each sweep then also proposes flipping every group as a block,
     * which mixes chained problems dramatically better than
     * single-spin moves alone.
     */
    void setGroups(const std::vector<std::vector<int>> &groups);

    /** Draw one sample with the given options and RNG. */
    SaResult sample(const SaOptions &opts, Rng &rng) const;

    /** @return the number of spins. */
    int numSpins() const { return static_cast<int>(h_.size()); }

    /** Energy of an explicit spin state under the model. */
    double energy(const std::vector<std::int8_t> &spins) const;

  private:
    /** Effective local field at spin i given the others. */
    double
    localField(const std::vector<std::int8_t> &s, int i) const
    {
        double f = h_[i];
        for (const auto &[j, w] : adj_[i])
            f += w * s[j];
        return f;
    }

    /** Energy change of flipping a whole group as a block. */
    double groupFlipDelta(const std::vector<std::int8_t> &s,
                          int group) const;

    double offset_ = 0.0;
    std::vector<double> h_;
    std::vector<std::vector<std::pair<int, double>>> adj_;
    std::vector<std::vector<int>> groups_;
    std::vector<int> group_of_; // spin -> group index or -1
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_SA_SAMPLER_H
