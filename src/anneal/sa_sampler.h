/**
 * @file
 * Simulated-annealing sampler over an arbitrary Ising model. This is
 * the computational stand-in for the quantum annealing device (the
 * same role dwave-neal plays for the paper's noise-free simulator):
 * it receives the physical Ising problem and returns one sample of
 * spins plus its energy.
 *
 * Hot-loop layout (PR 5): the model is compiled once into a flat CSR
 * adjacency (SaCompiled), and each chain maintains a cached
 * local-field array f_i = h_i + sum_j J_ij s_j that is updated
 * incrementally on every accepted flip — O(deg) per acceptance,
 * O(1) per energy-delta read, no per-attempt field rescan — with the
 * sample energy carried as a running value instead of a final
 * O(N*deg) pass. Chain/group block moves get the same treatment via
 * precompiled in-group coupling lists.
 *
 * Determinism contract: results and the RNG stream are bit-for-bit
 * those of the pre-CSR implementation. Uniform draws are consumed
 * if and only if a proposal is energetically uphill (dE > 0); when
 * a cached delta sits inside a tiny band around the accept/reject
 * boundary it is recomputed with the legacy summation order before
 * deciding, so accumulated rounding can never flip a decision (and
 * with it the whole downstream draw stream). exp() is skipped when
 * dE <= 0 and when dE clears the per-sweep underflow threshold
 * precomputed alongside the beta schedule (where exp(-beta*dE) is
 * exactly 0.0 and no uniform can accept).
 *
 * Multi-chain sampling: SaOptions::num_reads runs independent chains
 * on the shared WorkPool. Read 0 consumes the caller's Rng exactly
 * like a single read (the caller's stream position afterwards is
 * identical), so num_reads=1 is the legacy sampler bit for bit and
 * best-of-N can only improve the returned energy; auxiliary reads
 * are decorrelated by splitmix64-style seed offsets like the
 * portfolio workers.
 */

#ifndef HYQSAT_ANNEAL_SA_SAMPLER_H
#define HYQSAT_ANNEAL_SA_SAMPLER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "qubo/csr.h"
#include "qubo/qubo.h"
#include "util/rng.h"

namespace hyqsat::anneal {

/** Sampler knobs. */
struct SaOptions
{
    /** Metropolis sweeps per sample. */
    int sweeps = 128;

    /** Inverse-temperature ramp endpoints. */
    double beta_start = 0.1;
    double beta_end = 5.0;

    /**
     * Run a final zero-temperature descent (flip while any flip
     * lowers energy). The noise-free simulator enables this; a noisy
     * device sample does not.
     */
    bool greedy_finish = true;

    /**
     * Independent annealing chains per sample; the best energy wins.
     * Chains run in parallel on the shared WorkPool. 1 (the default)
     * reproduces the single-chain sampler exactly.
     */
    int num_reads = 1;

    /**
     * Run multi-read samples through the lockstep SIMD batch kernel
     * (src/anneal/sa_batch.h) instead of WorkPool threads: all reads
     * advance through one instruction stream, so num_reads pays on a
     * single core. Engages only when num_reads > 1; the num_reads=1
     * path stays on the frozen scalar contract either way. The
     * batched path has its OWN determinism contract (seeded from one
     * caller draw, bit-identical across ISAs) — it does not
     * reproduce the WorkPool reads' spins or RNG stream.
     */
    bool lockstep = false;

    /**
     * Number of parallel lockstep groups the batched path splits
     * num_reads into; the groups fan out across the shared WorkPool
     * so the SIMD per-core speedup compounds with core count.
     * 0 (the default) is auto: groups of up to 8 lanes, i.e.
     * ceil(num_reads / 8) groups. 1 forces the PR 9 single-group
     * behaviour for any read count. The effective partition is a
     * pure function of (num_reads, reads_groups) — NEVER of the
     * machine's core count, pool size or ISA — so batched results
     * stay bit-identical across thread counts (see sa_batch.h).
     * Ignored unless lockstep is set.
     */
    int reads_groups = 0;
};

/** Work counters for one sample (observability; see MetricsRegistry). */
struct SaStats
{
    std::uint64_t sweeps = 0;
    std::uint64_t flips_attempted = 0; ///< single-spin + group proposals
    std::uint64_t flips_accepted = 0;
    std::uint64_t reads = 0;       ///< chains run
    std::uint64_t read_groups = 0; ///< parallel lockstep groups run
};

/** One sample. */
struct SaResult
{
    std::vector<std::int8_t> spins;
    double energy = 0.0;

    /** Work done producing this sample (aggregated over reads). */
    SaStats stats;
};

/**
 * The compiled (flat) form of an Ising model plus its block-move
 * groups: everything SaSampler needs that does not change between
 * samples. Built once and shared — the annealer memoizes it next to
 * the embed cache entry so a frontend cache hit skips this build.
 */
struct SaCompiled
{
    qubo::CsrIsing csr;

    /** Block-move groups (qubit chains), in proposal order. */
    std::vector<std::vector<int>> groups;

    /** Spin -> group index, or -1. */
    std::vector<int> group_of;

    /**
     * Flattened in-group couplings, per group: the correction terms
     * that turn the sum of single-spin deltas into a block delta.
     * Edge e of group g lives at [edge_ptr[g], edge_ptr[g+1]) with
     * endpoints edge_u/edge_v and weight csr.w[edge_slot[e]].
     */
    std::vector<std::int32_t> edge_ptr;
    std::vector<std::int32_t> edge_u;
    std::vector<std::int32_t> edge_v;
    std::vector<std::int32_t> edge_slot;

    int numSpins() const { return csr.numSpins(); }

    /** Compile @p model (see CsrIsing::fromModel for include_zero). */
    static SaCompiled build(const qubo::IsingModel &model,
                            bool include_zero);

    /** (Re)compile the group tables for @p groups. */
    void compileGroups(const std::vector<std::vector<int>> &groups);
};

namespace detail {

/**
 * The incremental-state engine of one annealing chain: spins, the
 * cached local-field array and the running energy, with both the
 * O(1) cached deltas and the legacy-order fresh recomputations
 * (exposed separately so the exactness guard is property-testable
 * against brute-force energy differences).
 */
class IncrementalIsing
{
  public:
    /** Bind to a compiled model + coefficient view and set spins. */
    void reset(const SaCompiled &c, const double *h, const double *w,
               std::vector<std::int8_t> spins);

    /** Cached dE of flipping spin i: -2 s_i f_i. */
    double
    flipDelta(int i) const
    {
        return -2.0 * spins_[i] * f_[i];
    }

    /** dE of flipping spin i, local field re-summed in legacy order. */
    double freshFlipDelta(int i) const;

    /** Cached dE of flipping group g as a block. */
    double groupDelta(int g) const;

    /** Block dE via the legacy boundary-field summation order. */
    double freshGroupDelta(int g) const;

    /** Apply an accepted single-spin flip (dE already chosen). */
    void applyFlip(int i, double delta);

    /** Apply an accepted block flip of group g. */
    void applyGroup(int g, double delta);

    /** Running energy of the current spins. */
    double energy() const { return energy_; }

    const std::vector<std::int8_t> &spins() const { return spins_; }

    /** Move the spin state out (ends the run). */
    std::vector<std::int8_t>
    takeSpins()
    {
        return std::move(spins_);
    }

  private:
    const SaCompiled *c_ = nullptr;
    const double *h_ = nullptr;
    const double *w_ = nullptr;
    std::vector<std::int8_t> spins_;
    std::vector<double> f_; ///< cached local fields
    double energy_ = 0.0;   ///< running energy
};

} // namespace detail

/** Reusable SA sampler for a fixed Ising model. */
class SaSampler
{
  public:
    /** Preprocess @p model into the flat compiled form. */
    explicit SaSampler(const qubo::IsingModel &model);

    /** Wrap an already-compiled model (shared; not copied). */
    explicit SaSampler(std::shared_ptr<const SaCompiled> compiled);

    /**
     * Register spin groups (e.g. the qubit chains of an embedding).
     * Each sweep then also proposes flipping every group as a block,
     * which mixes chained problems dramatically better than
     * single-spin moves alone. Clones a shared compiled model
     * (copy-on-write) — pre-compiled callers bake groups into the
     * SaCompiled instead.
     */
    void setGroups(const std::vector<std::vector<int>> &groups);

    /**
     * Sample against externally-owned coefficient arrays instead of
     * the compiled base values: @p h has numSpins() entries, @p w
     * one per CSR entry (both twins of a coupling must carry the
     * same value). This is how the annealer applies per-sample
     * control-noise perturbations without recompiling; pass
     * (nullptr, nullptr) to restore the base coefficients. The
     * arrays must outlive subsequent sample()/energy() calls.
     */
    void setCoeffs(const double *h, const double *w);

    /**
     * Draw one sample with the given options and RNG. With
     * num_reads > 1 this is the best (lowest-energy) of
     * sampleAll(); ties keep the lowest read index.
     */
    SaResult sample(const SaOptions &opts, Rng &rng) const;

    /**
     * Run every read and return all samples ordered best-energy
     * first (stable: equal energies keep read order). The front
     * result's stats aggregate the work of all reads. Read 0 runs
     * against @p rng — afterwards @p rng has advanced exactly as a
     * num_reads=1 call, regardless of the read count.
     */
    std::vector<SaResult> sampleAll(const SaOptions &opts,
                                    Rng &rng) const;

    /** @return the number of spins. */
    int numSpins() const { return compiled_->numSpins(); }

    /**
     * Energy of an explicit spin state under the model (honors
     * setCoeffs).
     */
    double
    energy(const std::vector<std::int8_t> &spins) const
    {
        return compiled_->csr.energyWith(spins.data(), h_, w_);
    }

    /** The compiled model this sampler runs on. */
    const SaCompiled &compiled() const { return *compiled_; }

  private:
    /** One independent annealing chain. */
    SaResult runChain(const SaOptions &opts, Rng &rng) const;

    std::shared_ptr<const SaCompiled> compiled_;
    const double *h_ = nullptr; ///< active coefficient view
    const double *w_ = nullptr;
    bool external_coeffs_ = false;
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_SA_SAMPLER_H
