/**
 * @file
 * Internal interface between the lockstep orchestrator
 * (sa_batch.cpp) and its per-ISA kernels. The vector kernels live in
 * separate translation units compiled with the matching -m flags
 * (and -ffp-contract=off, like the scalar TU: FMA contraction would
 * break the cross-ISA bit-equality contract); everything ISA-neutral
 * that both sides must agree on bit for bit — the accept rule, the
 * uniform-consumption rule, the counters — lives here as shared
 * code so the kernels cannot drift apart.
 *
 * The shared helpers are `static`, not `inline`: an inline (comdat)
 * function compiled inside the -mavx2 TU could win the linker's
 * deduplication and leak AVX2 instructions into the portable call
 * sites. Internal linkage gives every TU its own copy, compiled
 * with that TU's own flags — same semantics, no ISA leak.
 */

#ifndef HYQSAT_ANNEAL_SA_BATCH_KERNELS_H
#define HYQSAT_ANNEAL_SA_BATCH_KERNELS_H

#include <bit>
#include <cmath>
#include <cstdint>

#include "anneal/sa_batch.h"
#include "anneal/sa_sampler.h"

namespace hyqsat::anneal::detail {

/** v with its bits ANDed against an accept mask (0 or ~0). */
static inline double
maskBits(double v, std::uint64_t m)
{
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) & m);
}

/** Spin negated where the mask accepts (sign-bit xor). */
static inline double
flipSignMasked(double s, std::uint64_t m)
{
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(s) ^
                                 (m & 0x8000000000000000ull));
}

/** Lane padding quantum (one AVX2 register of doubles). */
inline constexpr int kLaneQuantum = 4;

/**
 * Accept-threshold table resolution: exp(-x) sampled every 1/64 up
 * to x = 32 (beyond which the bound pair degenerates to
 * [0, exp(-32)) and almost every uniform rejects on the compare).
 */
inline constexpr int kAcceptTableN = 2048;
inline constexpr double kAcceptTableStep = 64.0;

/**
 * exp(-j / 64) for j in [0, kAcceptTableN], plus a trailing 0.0 so
 * the clamped index always has a valid lower bound. Built once,
 * shared by every kernel TU (single definition in sa_batch.cpp).
 */
const double *acceptTable();

/**
 * Metropolis accept decision for an uphill proposal: bracket
 * exp(-x) between adjacent table entries; only a uniform landing
 * between the bounds pays for an exact exp(). x = beta * dE >= 0.
 * (Reference form of the rule; the kernels' decideLanes below
 * implements the same decision branch-free.)
 */
static inline bool
acceptUphill(double x, double u)
{
    const double scaled = x * kAcceptTableStep;
    const int j = scaled >= static_cast<double>(kAcceptTableN)
                      ? kAcceptTableN
                      : static_cast<int>(scaled);
    const double *table = acceptTable();
    if (u >= table[j])
        return false; // at/above the upper bound
    if (u < table[j + 1])
        return true; // below the lower bound
    return u < std::exp(-x);
}

/** Working state of one lockstep run (buffers owned by the caller). */
struct BatchCtx
{
    const SaCompiled *c = nullptr;
    const double *h = nullptr;
    const double *w = nullptr;

    int n = 0;     ///< spins
    int reads = 0; ///< real lanes
    int lanes = 0; ///< padded to a multiple of kLaneQuantum

    double *spins = nullptr;  ///< n * lanes SoA, +1.0 / -1.0
    double *fields = nullptr; ///< n * lanes SoA cached local fields

    const double *betas = nullptr; ///< per-sweep schedule
    int sweeps = 0;
    bool greedy = false;

    BlockRng *rng = nullptr; ///< shared Metropolis stream

    // Per-lane scratch, all `lanes` wide.
    double *delta = nullptr;
    double *uniforms = nullptr;
    double *tmp = nullptr;         ///< masked-update term buffer
    std::uint64_t *mask = nullptr; ///< ~0ull accept / 0ull reject

    // Outputs.
    double *accepted = nullptr;  ///< per-lane acceptance counts
    std::uint64_t attempts = 0;  ///< proposals seen (per lane; equal
                                 ///< across lanes by lockstep)
};

/**
 * Exact-exp fixup for the rare lanes whose uniform landed BETWEEN
 * the accept table's bracket bounds (pass 1 left their mask 0).
 * Recomputes the band test per lane — the rare path pays a few
 * redundant compares so the hot pass-1 loops (scalar and vector
 * alike) only have to track ONE "some lane is ambiguous" flag
 * instead of a per-lane bitmask that would cap the lane count at
 * the word width. Returns ~0 if any lane flipped to accept, 0
 * otherwise. Decisions identical to acceptUphill(), lane by lane.
 */
static inline std::uint64_t
resolveAmbiguousLanes(BatchCtx &ctx, double beta)
{
    const double *table = acceptTable();
    std::uint64_t flipped = 0;
    for (int r = 0; r < ctx.reads; ++r) {
        if (ctx.mask[r] != 0)
            continue;
        const double d = ctx.delta[r];
        if (!(d > 0.0))
            continue; // downhill lanes were decided in pass 1
        const double u = ctx.uniforms[r];
        const double scaled = (beta * d) * kAcceptTableStep;
        const int j =
            scaled >= static_cast<double>(kAcceptTableN)
                ? kAcceptTableN
                : static_cast<int>(scaled);
        if (u < table[j] && u >= table[j + 1] &&
            u < std::exp(-beta * d)) {
            ctx.mask[r] = ~0ull;
            ctx.accepted[r] += 1.0;
            flipped = ~0ull;
        }
    }
    return flipped;
}

/**
 * Decide every lane of the proposal whose per-lane dE sits in
 * ctx.delta: fill ctx.mask, bump the per-lane acceptance counters
 * and ctx.attempts, and return whether any lane accepted.
 *
 * The shared-stream consumption rule (part of the batched golden
 * contract): `lanes` uniforms are taken if and only if at least one
 * REAL lane is uphill. Padded lanes never consume, never accept.
 * Metropolis proposals accept dE <= 0 outright; the zero-temperature
 * greedy finish (@p metropolis false) accepts only dE < 0 and draws
 * nothing.
 */
static inline bool
decideLanes(BatchCtx &ctx, double beta, bool metropolis)
{
    const int lanes = ctx.lanes;
    const int reads = ctx.reads;
    ++ctx.attempts;

    if (!metropolis) {
        // Zero-temperature greedy finish: strict descent, no draws.
        bool any_accept = false;
        for (int r = 0; r < lanes; ++r) {
            const bool accept = r < reads && ctx.delta[r] < 0.0;
            ctx.mask[r] = accept ? ~0ull : 0ull;
            ctx.accepted[r] += accept ? 1.0 : 0.0;
            any_accept |= accept;
        }
        return any_accept;
    }

    bool any_uphill = false;
    for (int r = 0; r < reads; ++r)
        any_uphill |= ctx.delta[r] > 0.0;
    if (!any_uphill) {
        // Every real lane is downhill or flat: all accept, and the
        // shared stream is untouched (the consumption rule).
        for (int r = 0; r < lanes; ++r) {
            const bool accept = r < reads;
            ctx.mask[r] = accept ? ~0ull : 0ull;
            ctx.accepted[r] += accept ? 1.0 : 0.0;
        }
        return true;
    }

    ctx.rng->take(ctx.uniforms, static_cast<std::size_t>(lanes));
    const double *table = acceptTable();
    // Pass 1, genuinely branchless (this loop runs once per proposal
    // for every lane — one mispredicted per-lane branch here costs
    // more than all the vector arithmetic around it, so everything
    // is bitwise bool math and min/max-style clamps, never || / ?:
    // on lane data): decide each lane from the exp(-x) bracket table
    // alone, deferring the rare uniform that lands BETWEEN the
    // bounds to the exact-exp fixup. Identical decisions to
    // acceptUphill(), lane by lane.
    unsigned ambiguous = 0;
    std::uint64_t mask_or = 0;
    for (int r = 0; r < lanes; ++r) {
        const double d = ctx.delta[r];
        const double u = ctx.uniforms[r];
        double scaled = (beta * d) * kAcceptTableStep;
        scaled = scaled > 0.0 ? scaled : 0.0; // maxsd, not a branch
        scaled = scaled < static_cast<double>(kAcceptTableN)
                     ? scaled
                     : static_cast<double>(kAcceptTableN); // minsd
        const int j = static_cast<int>(scaled);
        const unsigned down = static_cast<unsigned>(d <= 0.0);
        const unsigned real = static_cast<unsigned>(r < reads);
        const unsigned below_lo =
            static_cast<unsigned>(u < table[j + 1]);
        const unsigned below_hi = static_cast<unsigned>(u < table[j]);
        const unsigned sure = down | below_lo;
        const std::uint64_t m =
            ~(static_cast<std::uint64_t>(real & sure) - 1ull);
        ctx.mask[r] = m;
        mask_or |= m;
        ctx.accepted[r] += maskBits(1.0, m);
        ambiguous |= real & below_hi & (sure ^ 1u);
    }
    if (ambiguous != 0)
        mask_or |= resolveAmbiguousLanes(ctx, beta);
    return mask_or != 0;
}

/**
 * Run the full anneal (sweeps, block moves, optional greedy finish)
 * over ctx with the scalar fallback kernel. Always compiled.
 */
void runLockstepScalar(BatchCtx &ctx);

#if defined(HYQSAT_HAVE_AVX2_KERNEL)
/** AVX2 kernel (separate TU, -mavx2): bit-identical to scalar. */
void runLockstepAvx2(BatchCtx &ctx);
#endif

#if defined(HYQSAT_HAVE_AVX512_KERNEL)
/**
 * AVX-512 kernel (separate TU, -mavx512f -mavx512dq): bit-identical
 * to scalar. Only dispatched when lanes is a multiple of 8.
 */
void runLockstepAvx512(BatchCtx &ctx);
#endif

#if defined(HYQSAT_HAVE_NEON_KERNEL)
/** NEON kernel (separate TU): bit-identical to scalar. */
void runLockstepNeon(BatchCtx &ctx);
#endif

} // namespace hyqsat::anneal::detail

#endif // HYQSAT_ANNEAL_SA_BATCH_KERNELS_H
