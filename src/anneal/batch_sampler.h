/**
 * @file
 * Best-of-N batch sampler: a persistent thread pool where each worker
 * owns an independently seeded QuantumAnnealer; every submission is
 * sampled by all workers in parallel and the lowest clause-space
 * energy wins (ties resolved by worker index for determinism).
 *
 * This models a multi-read device schedule — the reported device
 * time is N consecutive anneal-readout cycles, exactly like
 * QuantumAnnealer::sampleMajorityVote — while the host-side cost is
 * amortized across cores.
 */

#ifndef HYQSAT_ANNEAL_BATCH_SAMPLER_H
#define HYQSAT_ANNEAL_BATCH_SAMPLER_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "anneal/sampler.h"

namespace hyqsat::anneal {

/** Thread-pool best-of-N sampler. */
class BatchSampler : public SyncSampler
{
  public:
    struct Options
    {
        /** Workers = independent seeds raced (clamped to [1, 16]). */
        int samples = 4;

        QuantumAnnealer::Options annealer;
    };

    BatchSampler(const chimera::ChimeraGraph &graph, Options opts);
    ~BatchSampler() override;

    const char *name() const override { return "batch"; }

    int numWorkers() const
    {
        return static_cast<int>(annealers_.size());
    }

  protected:
    AnnealSample compute(const SampleRequest &request) override;

  private:
    void workerLoop(int index);

    Options opts_;
    std::vector<std::unique_ptr<QuantumAnnealer>> annealers_;
    std::vector<AnnealSample> results_;

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const SampleRequest *request_ = nullptr; ///< valid during a round
    std::uint64_t generation_ = 0;           ///< bumped per round
    int pending_ = 0;                        ///< workers still sampling
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_BATCH_SAMPLER_H
