/**
 * @file
 * Best-of-N batch sampler: each of N independently seeded
 * QuantumAnnealers samples every submission, fanned out over the
 * process-wide WorkPool, and the lowest clause-space energy wins
 * (ties resolved by worker index for determinism).
 *
 * This models a multi-read device schedule — the reported device
 * time is N consecutive anneal-readout cycles, exactly like
 * QuantumAnnealer::sampleMajorityVote — while the host-side cost is
 * amortized across cores. Per-worker results are deterministic
 * regardless of which pool thread runs which worker: each worker
 * owns its annealer (and Rng), and the submitting thread joins the
 * fan-out barrier before reading anything.
 */

#ifndef HYQSAT_ANNEAL_BATCH_SAMPLER_H
#define HYQSAT_ANNEAL_BATCH_SAMPLER_H

#include <memory>
#include <vector>

#include "anneal/sampler.h"

namespace hyqsat::anneal {

/** Pool-fan-out best-of-N sampler. */
class BatchSampler : public SyncSampler
{
  public:
    struct Options
    {
        /** Workers = independent seeds raced (clamped to [1, 16]). */
        int samples = 4;

        QuantumAnnealer::Options annealer;

        /** anneal.* metrics sink (see SamplerSpec::metrics). */
        MetricsRegistry *metrics = nullptr;
    };

    BatchSampler(const chimera::ChimeraGraph &graph, Options opts);

    const char *name() const override { return "batch"; }

    int numWorkers() const
    {
        return static_cast<int>(annealers_.size());
    }

  protected:
    AnnealSample compute(const SampleRequest &request) override;

  private:
    Options opts_;
    AnnealMetrics metrics_;
    std::vector<std::unique_ptr<QuantumAnnealer>> annealers_;
    std::vector<AnnealSample> results_;
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_BATCH_SAMPLER_H
