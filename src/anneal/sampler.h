/**
 * @file
 * Pluggable sampler interface: the contract between the hybrid loop
 * and whatever device (real or simulated) produces annealing samples.
 *
 * The interface is future-style: submit() enqueues an embedded (or
 * logical) problem and returns a ticket; poll()/wait() harvest
 * completed samples. Synchronous backends (the default simulated
 * annealer paths) compute eagerly inside submit(), so a depth-1
 * caller behaves exactly like a blocking call. Asynchronous backends
 * (AsyncSampler's worker thread, a future remote QPU client) return
 * from submit() immediately and complete in the background; the
 * caller keeps doing CDCL work while a sample is in flight.
 *
 * Contract (see DESIGN.md "Sampler backends & async pipeline"):
 *  - Tickets are issued in strictly increasing order per sampler and
 *    completions are delivered in submission (FIFO) order.
 *  - submit() beyond capacity() is allowed but may block or queue;
 *    callers that must not stall should track in-flight counts and
 *    stay within capacity().
 *  - submit()/poll()/wait() must be called from one thread (the
 *    hybrid loop); implementations handle their own internal
 *    threading. Each sampler owns its Rng — Rng itself is NOT
 *    thread-safe and must never be shared across threads.
 */

#ifndef HYQSAT_ANNEAL_SAMPLER_H
#define HYQSAT_ANNEAL_SAMPLER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anneal/annealer.h"
#include "chimera/chimera.h"
#include "embed/embedding.h"
#include "qubo/encoder.h"
#include "util/cancel.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace hyqsat::embed {
struct QueueEmbedResult;
}

namespace hyqsat::anneal {

/**
 * Resolved handles for the anneal.* metrics. All null when no
 * registry is attached (the one-branch-when-disabled contract);
 * resolve() binds them once at sampler construction.
 */
struct AnnealMetrics
{
    Counter *sweeps = nullptr;
    Counter *flips_attempted = nullptr;
    Counter *flips_accepted = nullptr;
    Counter *reads = nullptr;
    Counter *read_groups = nullptr; ///< parallel lockstep groups

    /** Host seconds spent producing samples ("anneal.sample"). */
    MetricTimer *sample_timer = nullptr;

    static AnnealMetrics resolve(MetricsRegistry *registry);

    /** Record one sample's work counters. */
    void
    record(const SaStats &stats) const
    {
        metricInc(sweeps, stats.sweeps);
        metricInc(flips_attempted, stats.flips_attempted);
        metricInc(flips_accepted, stats.flips_accepted);
        metricInc(reads, stats.reads);
        metricInc(read_groups, stats.read_groups);
    }
};

/**
 * One sampling job. The request holds shared (non-null) references to
 * the problem and embedding so the submitter may rebuild its clause
 * queue (after a conflict) while the job is still in flight, without
 * deep-copying the encoded problem into every submission — the hybrid
 * loop aliases its cached frontend result.
 */
struct SampleRequest
{
    std::shared_ptr<const qubo::EncodedProblem> problem;
    std::shared_ptr<const embed::Embedding> embedding;

    /** Sample through the embedding (false = ideal logical device). */
    bool use_embedding = true;

    /**
     * The cached embed result that owns @p problem / @p embedding,
     * when the submitter has one (the hybrid pipeline's
     * QueueEmbedCache entry). Carries the CompiledSlot where
     * samplers memoize the compiled sampling form, so a frontend
     * cache hit also skips the annealer's model rebuild. Optional —
     * samplers must work (just compile per call) when null.
     */
    std::shared_ptr<const embed::QueueEmbedResult> embedded;
};

/** A finished job, correlated to its submission by ticket. */
struct SampleCompletion
{
    std::uint64_t ticket = 0;
    AnnealSample sample;

    /**
     * Host CPU cost of simulating the device for this job (the
     * analogue of TimeBreakdown::qa_host_s; excluded from modeled
     * end-to-end time).
     */
    double host_seconds = 0.0;
};

/** Abstract sampling backend. */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /** Stable backend name (the --sampler= spelling). */
    virtual const char *name() const = 0;

    /**
     * Maximum useful number of in-flight submissions: 1 for
     * synchronous backends, the pipeline depth for async ones.
     */
    virtual int capacity() const { return 1; }

    /** Enqueue a job; returns its ticket. */
    virtual std::uint64_t submit(SampleRequest request) = 0;

    /** Harvest completed jobs without blocking (appends to @p out). */
    virtual void poll(std::vector<SampleCompletion> &out) = 0;

    /**
     * Block until at least one job completes, then harvest every
     * completed job. Returns immediately when nothing is in flight.
     */
    virtual void wait(std::vector<SampleCompletion> &out) = 0;

    /** Jobs submitted but not yet harvested. */
    virtual int inFlight() const = 0;

    /** Convenience: submit one job and block for its sample. */
    AnnealSample sampleNow(SampleRequest request);
};

/**
 * Base for synchronous backends: compute() runs eagerly inside
 * submit() and the completion is harvested by the next poll().
 */
class SyncSampler : public Sampler
{
  public:
    std::uint64_t submit(SampleRequest request) final;
    void poll(std::vector<SampleCompletion> &out) final;
    void wait(std::vector<SampleCompletion> &out) final;
    int inFlight() const final
    {
        return static_cast<int>(done_.size());
    }

  protected:
    /** One blocking sample. */
    virtual AnnealSample compute(const SampleRequest &request) = 0;

  private:
    std::vector<SampleCompletion> done_;
    std::uint64_t next_ticket_ = 1;
};

/**
 * The QuantumAnnealer device model behind the Sampler interface —
 * the default backend ("qa"; "sync" is an alias used when the
 * depth-1 behavior is the point). force_logical pins the ideal
 * all-to-all device regardless of the request ("logical").
 */
class QaSampler : public SyncSampler
{
  public:
    QaSampler(const chimera::ChimeraGraph &graph,
              QuantumAnnealer::Options opts, bool force_logical = false,
              MetricsRegistry *metrics = nullptr);

    const char *name() const override
    {
        return force_logical_ ? "logical" : "qa";
    }

    QuantumAnnealer &annealer() { return annealer_; }

  protected:
    AnnealSample compute(const SampleRequest &request) override;

  private:
    QuantumAnnealer annealer_;
    bool force_logical_;
    AnnealMetrics metrics_;
};

/**
 * Plain simulated annealing over the logical Ising model ("sa"):
 * no topology, no control noise, no chains. The quality ceiling the
 * device emulation is compared against.
 */
class SaDirectSampler : public SyncSampler
{
  public:
    struct Options
    {
        SaOptions sa;
        TimingModel timing; ///< still reports modeled device time
        std::uint64_t seed = 0x5eed0f2a;
    };

    explicit SaDirectSampler(Options opts,
                             MetricsRegistry *metrics = nullptr);

    const char *name() const override { return "sa"; }

  protected:
    AnnealSample compute(const SampleRequest &request) override;

  private:
    Options opts_;
    Rng rng_;
    AnnealMetrics metrics_;
};

/**
 * Everything makeSampler() needs to build a backend by name:
 *   "sync" / "qa"  QuantumAnnealer device model (depth 1)
 *   "logical"      ideal all-to-all device (no embedding)
 *   "sa"           plain SA over the logical Ising model
 *   "batch"        thread-pool best-of-N QuantumAnnealer
 *   "async"        AsyncSampler-wrapped "qa" (depth >= 2)
 *   "async:<x>"    AsyncSampler wrapping backend <x>
 */
struct SamplerSpec
{
    std::string name = "sync";
    QuantumAnnealer::Options annealer;

    /** Independent seeds raced by the "batch" backend. */
    int batch_samples = 4;

    /** In-flight depth for async backends (clamped to >= 2). */
    int pipeline_depth = 2;

    /** Modeled network round-trip added per async sample (us). */
    double rtt_us = 0.0;

    /**
     * Cooperative stop token observed by async backends' blocking
     * wait() (see AsyncSampler::Options::stop); nullptr = none.
     */
    const StopToken *stop = nullptr;

    /**
     * Registry receiving the anneal.* counters and the anneal.sample
     * timer (not owned; must outlive the sampler). nullptr disables
     * recording at one branch per site.
     */
    MetricsRegistry *metrics = nullptr;
};

/** Build a backend by name; fatal() on an unknown name. */
std::unique_ptr<Sampler> makeSampler(const SamplerSpec &spec,
                                     const chimera::ChimeraGraph &graph);

/** Known backend names (for --help strings). */
const std::vector<std::string> &samplerNames();

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_SAMPLER_H
