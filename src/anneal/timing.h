/**
 * @file
 * Device-timing model. The paper configures 20us annealing and
 * 110us readout per sample with a 20us inter-sample delay (§VI-A,
 * Fig. 1); end-to-end numbers combine this modeled device time with
 * measured host CPU time. The simulator reports the same arithmetic
 * so Table II / Fig. 11 can be regenerated without hardware.
 */

#ifndef HYQSAT_ANNEAL_TIMING_H
#define HYQSAT_ANNEAL_TIMING_H

namespace hyqsat::anneal {

/** QA device timing parameters (microseconds). */
struct TimingModel
{
    double anneal_us = 20.0;
    double readout_us = 110.0;
    double delay_us = 20.0;

    /** Device time for @p samples consecutive samples. */
    double
    sampleTimeUs(int samples) const
    {
        if (samples <= 0)
            return 0.0;
        return static_cast<double>(samples) * (anneal_us + readout_us) +
               static_cast<double>(samples - 1) * delay_us;
    }
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_TIMING_H
