/**
 * @file
 * Quantum-annealer facade: the component that plays the role of the
 * D-Wave 2000Q in this reproduction. It programs an embedded (or
 * logical) Ising problem, draws one sample with a configurable noise
 * model, de-embeds chains by majority vote and reports the
 * clause-space energy that the HyQSAT backend interprets, together
 * with modeled device time.
 */

#ifndef HYQSAT_ANNEAL_ANNEALER_H
#define HYQSAT_ANNEAL_ANNEALER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "anneal/noise.h"
#include "anneal/sa_sampler.h"
#include "anneal/timing.h"
#include "chimera/chimera.h"
#include "embed/compiled_slot.h"
#include "embed/embedding.h"
#include "qubo/encoder.h"
#include "util/rng.h"

namespace hyqsat::anneal {

/**
 * Everything about a programmed problem that survives between
 * samples: the compiled flat Ising form (CSR + chain groups) and the
 * ordered control-noise replay schedule. Built once per problem and
 * memoized in the embed result's CompiledSlot; defined in
 * annealer.cpp.
 */
struct AnnealCompiled;

/** One annealer sample, already interpreted to logical space. */
struct AnnealSample
{
    /** Assignment of every problem node (variables + auxiliaries). */
    std::vector<bool> node_bits;

    /**
     * Clause-space energy: the unit objective (alpha = 1) value of
     * the de-embedded assignment. Zero iff every embedded clause is
     * satisfied with consistent auxiliaries; the backend's
     * confidence intervals live on this axis.
     */
    double clause_energy = 0.0;

    /**
     * Device-reported energy: the alpha-weighted (coefficient-
     * adjusted) objective at the de-embedded assignment. This is
     * the axis the coefficient adjustment lifts (Fig. 15); equal to
     * clause_energy when the adjustment is disabled.
     */
    double weighted_energy = 0.0;

    /** Energy of the physical (or logical) Ising problem sampled. */
    double physical_energy = 0.0;

    /** Chains whose qubits disagreed before majority vote. */
    int chain_breaks = 0;

    /** Modeled device wall-clock for this sample (microseconds). */
    double device_time_us = 0.0;
};

/** Simulated quantum annealer. */
class QuantumAnnealer
{
  public:
    struct Options
    {
        NoiseModel noise = NoiseModel::dwave2000q();
        TimingModel timing;

        /**
         * Ferromagnetic intra-chain coupling strength, in units of
         * the hardware J range (applied as -chain_strength).
         */
        double chain_strength = 1.0;

        /**
         * Zero-temperature descent after the anneal. On for the
         * noise-free simulator, off for noisy device emulation.
         */
        bool greedy_finish = false;

        /**
         * Internal anneal repetitions per sample; the lowest
         * clause-space energy wins. The noise-free simulator uses a
         * few attempts (the paper's simulator runs "with a long
         * timeout"); a noisy device models one shot.
         */
        int attempts = 1;

        /**
         * Independent annealing chains per internal anneal (the
         * device analogue of requesting num_reads samples and
         * keeping the best); chains run in parallel on the shared
         * WorkPool. 1 reproduces the single-chain annealer exactly,
         * including its RNG stream.
         */
        int num_reads = 1;

        /**
         * Run multi-read anneals through the lockstep SIMD batch
         * kernel instead of WorkPool threads (SaOptions::lockstep):
         * same best-of-N semantics, its own determinism contract.
         * No effect at num_reads <= 1.
         */
        bool reads_batch = false;

        /**
         * Parallel lockstep groups for the batched path
         * (SaOptions::reads_groups): 0 auto-sizes groups of up to 8
         * SIMD lanes and fans them across the shared WorkPool, so
         * the per-core vector speedup compounds with core count; 1
         * forces the single-group path. Results stay a pure function
         * of (seed, model, options) for every value — the partition
         * never depends on the machine. No effect unless reads_batch.
         */
        int reads_groups = 0;

        std::uint64_t seed = 0x5eed0f2a;
    };

    QuantumAnnealer(const chimera::ChimeraGraph &graph, Options opts);

    /**
     * Program the embedded problem onto the hardware graph and draw
     * one sample (the HyQSAT flow: one sample per CDCL iteration).
     */
    AnnealSample sample(const qubo::EncodedProblem &problem,
                        const embed::Embedding &embedding);

    /**
     * Memoizing overload: identical result, but the compiled
     * sampling form is fetched from (or parked in) @p slot — pass
     * the CompiledSlot of the cached QueueEmbedResult that owns
     * @p problem / @p embedding, so repeat samples of a cached
     * embedding skip the whole model rebuild. @p slot may be null.
     */
    AnnealSample sample(const qubo::EncodedProblem &problem,
                        const embed::Embedding &embedding,
                        const embed::CompiledSlot *slot);

    /**
     * Sample the logical problem directly (ideal all-to-all device).
     * Used by the noise-free simulator path and for calibration.
     */
    AnnealSample sampleLogical(const qubo::EncodedProblem &problem);

    /** Memoizing overload of sampleLogical; see sample(). */
    AnnealSample sampleLogical(const qubo::EncodedProblem &problem,
                               const embed::CompiledSlot *slot);

    /**
     * Classical noise mitigation from the paper's related work
     * (§VIII-C, majority voting [63]): draw @p samples device shots
     * and majority-vote every node's value across them; the
     * returned sample carries the voted assignment, its energies
     * and the summed device time. HyQSAT itself deliberately uses
     * one shot per iteration; this is the baseline it avoids.
     */
    AnnealSample sampleMajorityVote(const qubo::EncodedProblem &problem,
                                    const embed::Embedding &embedding,
                                    int samples);

    /** Access the RNG (e.g. to reseed between experiments). */
    Rng &rng() { return rng_; }

    const Options &options() const { return opts_; }

    /**
     * Annealing work counters of the most recent sample() /
     * sampleLogical() / sampleMajorityVote() call (summed over
     * attempts, reads and shots). Feeds the anneal.* metrics.
     */
    const SaStats &lastRunStats() const { return run_stats_; }

  private:
    /** Gaussian control noise on a programmed coefficient. */
    double perturb(double value, double range);

    /** Compile (or fetch from @p slot) the embedded physical form. */
    std::shared_ptr<const AnnealCompiled>
    compiledEmbedded(const qubo::EncodedProblem &problem,
                     const embed::Embedding &embedding,
                     const embed::CompiledSlot *slot);

    /** Compile (or fetch from @p slot) the logical form. */
    std::shared_ptr<const AnnealCompiled>
    compiledLogical(const qubo::EncodedProblem &problem,
                    const embed::CompiledSlot *slot);

    /**
     * Re-draw the control noise for one sample by replaying the
     * compiled schedule into the member buffers and pointing
     * @p sampler at them (no-op when coefficient_sigma is zero —
     * the seed-identical RNG stream depends on drawing nothing).
     */
    void applyNoise(const AnnealCompiled &cp, SaSampler &sampler);

    const chimera::ChimeraGraph &graph_;
    Options opts_;
    Rng rng_;
    SaStats run_stats_;

    /** Per-sample noisy coefficient buffers (capacity reused). */
    std::vector<double> noisy_h_;
    std::vector<double> noisy_w_;
};

} // namespace hyqsat::anneal

#endif // HYQSAT_ANNEAL_ANNEALER_H
