/**
 * @file
 * Exhaustive reference solver used to validate the CDCL solver and
 * the QUBO encoder on small instances.
 */

#ifndef HYQSAT_SAT_BRUTE_FORCE_H
#define HYQSAT_SAT_BRUTE_FORCE_H

#include <optional>
#include <vector>

#include "sat/cnf.h"

namespace hyqsat::sat {

/** Result of an exhaustive search. */
struct BruteForceResult
{
    bool satisfiable = false;
    /** A satisfying assignment when satisfiable. */
    std::vector<bool> model;
    /** Number of satisfying assignments (counted exhaustively). */
    std::uint64_t num_models = 0;
};

/**
 * Enumerate all 2^n assignments of @p cnf (n must be <= 30).
 * @param count_all when false, stops at the first model
 *        (num_models is then 0 or 1).
 */
BruteForceResult bruteForceSolve(const Cnf &cnf, bool count_all = false);

/**
 * @return the minimum number of violated clauses over all
 * assignments (0 iff satisfiable); n must be <= 30.
 */
int bruteForceMinViolated(const Cnf &cnf);

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_BRUTE_FORCE_H
