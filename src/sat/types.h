/**
 * @file
 * Fundamental SAT types shared by the whole library: variables,
 * literals and the three-valued lifted Boolean.
 *
 * The representation follows the MiniSat convention: a literal packs
 * a variable index and a sign into one integer (2*var + sign), which
 * makes literal-indexed arrays (watch lists, assignments) dense.
 */

#ifndef HYQSAT_SAT_TYPES_H
#define HYQSAT_SAT_TYPES_H

#include <cstdint>
#include <functional>
#include <vector>

namespace hyqsat::sat {

/** Variable index, 0-based. var_Undef marks "no variable". */
using Var = std::int32_t;

/** Sentinel for an absent variable. */
constexpr Var var_Undef = -1;

/** A literal: a variable with a sign. */
struct Lit
{
    /** Packed representation: 2 * var + sign (sign 1 == negated). */
    std::int32_t x = -2;

    constexpr Lit() = default;

    /** Build a literal over @p v; @p sign true means negated. */
    constexpr Lit(Var v, bool sign) : x(2 * v + static_cast<int>(sign)) {}

    /** @return the underlying variable. */
    constexpr Var var() const { return x >> 1; }

    /** @return true if the literal is negative. */
    constexpr bool sign() const { return x & 1; }

    /** @return the complementary literal. */
    constexpr Lit operator~() const { Lit p; p.x = x ^ 1; return p; }

    /** @return this literal with sign flipped iff @p b. */
    constexpr Lit
    operator^(bool b) const
    {
        Lit p;
        p.x = x ^ static_cast<int>(b);
        return p;
    }

    constexpr bool operator==(const Lit &o) const { return x == o.x; }
    constexpr bool operator!=(const Lit &o) const { return x != o.x; }
    constexpr bool operator<(const Lit &o) const { return x < o.x; }
};

/** Sentinel literal (no literal). */
constexpr Lit lit_Undef{};

/** @return a positive literal over @p v. */
constexpr Lit mkLit(Var v, bool sign = false) { return Lit(v, sign); }

/**
 * Build a literal from DIMACS convention: +v means variable v-1
 * positive, -v means variable v-1 negated. @p dimacs must not be 0.
 */
constexpr Lit
fromDimacs(int dimacs)
{
    return dimacs > 0 ? mkLit(dimacs - 1, false) : mkLit(-dimacs - 1, true);
}

/** @return the DIMACS integer for @p p (1-based, sign = polarity). */
constexpr int
toDimacs(Lit p)
{
    return p.sign() ? -(p.var() + 1) : (p.var() + 1);
}

/** Lifted Boolean: true, false or undefined. */
class lbool
{
  public:
    constexpr lbool() : value_(2) {}
    constexpr explicit lbool(bool b) : value_(b ? 0 : 1) {}

    constexpr bool isTrue() const { return value_ == 0; }
    constexpr bool isFalse() const { return value_ == 1; }
    constexpr bool isUndef() const { return value_ == 2; }

    constexpr bool operator==(const lbool &o) const
    {
        return value_ == o.value_;
    }
    constexpr bool operator!=(const lbool &o) const
    {
        return value_ != o.value_;
    }

    /** @return the negation; undef stays undef. */
    constexpr lbool
    operator~() const
    {
        lbool r;
        r.value_ = value_ == 2 ? 2 : (value_ ^ 1);
        return r;
    }

    /** XOR with a plain bool; undef stays undef. */
    constexpr lbool
    operator^(bool b) const
    {
        lbool r;
        r.value_ = value_ == 2 ? 2 : (value_ ^ static_cast<uint8_t>(b));
        return r;
    }

  private:
    std::uint8_t value_;
};

constexpr lbool l_True = lbool(true);
constexpr lbool l_False = lbool(false);
constexpr lbool l_Undef = lbool();

/** A clause as a plain literal vector (used outside the solver core). */
using LitVec = std::vector<Lit>;

} // namespace hyqsat::sat

/** Hash support so literals can key unordered containers. */
template <>
struct std::hash<hyqsat::sat::Lit>
{
    std::size_t
    operator()(const hyqsat::sat::Lit &p) const noexcept
    {
        return std::hash<std::int32_t>()(p.x);
    }
};

#endif // HYQSAT_SAT_TYPES_H
