/**
 * @file
 * Conflict-driven clause-learning SAT solver.
 *
 * A from-scratch MiniSat-class solver: two-watched-literal
 * propagation over arena clauses, first-UIP learning with recursive
 * minimization, VSIDS or CHB branching, phase saving, Luby restarts
 * and activity-driven learnt-database reduction.
 *
 * Beyond a plain solver it provides the integration surface HyQSAT
 * needs: per-original-clause visit counters and conflict-frequency
 * activity scores (§IV-A of the paper), an iteration hook invoked at
 * every decision so the hybrid layer can interpose quantum feedback,
 * externally forced polarities (feedback strategy 2) and variable
 * priority bumps (feedback strategy 4).
 */

#ifndef HYQSAT_SAT_SOLVER_H
#define HYQSAT_SAT_SOLVER_H

#include <functional>
#include <vector>

#include "sat/clause.h"
#include "sat/cnf.h"
#include "sat/heap.h"
#include "sat/solver_options.h"
#include "sat/types.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace hyqsat {
class Counter;
class Gauge;
class MetricTimer;
class MetricsRegistry;
class TraceSink;
} // namespace hyqsat

namespace hyqsat::sat {

/** CDCL solver. See file comment for the feature set. */
class Solver
{
  public:
    explicit Solver(const SolverOptions &opts = {});

    // ------------------------------------------------------------------
    // Problem construction
    // ------------------------------------------------------------------

    /** Allocate a fresh variable and return its index. */
    Var newVar();

    /** @return the number of variables. */
    int numVars() const { return static_cast<int>(assigns_.size()); }

    /**
     * Add a clause (top-level). Performs the standard root-level
     * simplifications (drop duplicate/false literals, detect
     * tautologies, enqueue units). May be called between solve
     * calls (IPASIR-style incremental use): learnt clauses, VSIDS
     * activity and saved polarities are retained, and the new clause
     * is simplified against the level-0 trail only. Calling it with
     * open decision levels is a programming error (panics).
     *
     * @param lits the clause literals
     * @param original_index index of this clause in the source Cnf
     *        for instrumentation, or -1 for an anonymous clause
     * @return false iff the formula became trivially unsatisfiable
     */
    bool addClause(LitVec lits, int original_index = -1);

    /** Load every clause of @p cnf, recording original indices. */
    bool loadCnf(const Cnf &cnf);

    // ------------------------------------------------------------------
    // Solving
    // ------------------------------------------------------------------

    /**
     * Run the CDCL search to completion or budget exhaustion.
     * @return l_True (satisfiable; model() is valid), l_False
     *         (unsatisfiable) or l_Undef (budget/stop request).
     */
    lbool solve();

    /**
     * Solve under assumptions: the given literals are forced as the
     * first decisions. On l_False, finalConflict() holds the subset
     * of assumptions the refutation used (negated), enabling
     * incremental use (unsat cores over assumptions). Variables
     * beyond numVars() are allocated on the fly. Repeated calls
     * (with addClause between them) retain learnt clauses, VSIDS
     * activity and saved polarity.
     */
    lbool solveWithAssumptions(const LitVec &assumptions);

    /**
     * After solveWithAssumptions() returned l_False: the clause
     * over negated assumptions implied by the formula (empty when
     * the formula is unsatisfiable on its own).
     */
    const LitVec &finalConflict() const { return final_conflict_; }

    /** @return the satisfying assignment after solve()==l_True. */
    const std::vector<lbool> &model() const { return model_; }

    /** @return model as a plain bool vector (undef mapped to false). */
    std::vector<bool> boolModel() const;

    /** @return false once the formula is known unsatisfiable. */
    bool okay() const { return ok_; }

    /** Current value of a variable / literal under the trail. */
    lbool value(Var v) const { return assigns_[v]; }
    lbool value(Lit p) const { return assigns_[p.var()] ^ p.sign(); }

    /** @return the current decision level. */
    int decisionLevel() const { return static_cast<int>(trail_lim_.size()); }

    // ------------------------------------------------------------------
    // Budgets and interruption
    // ------------------------------------------------------------------

    /** Limit the number of conflicts (negative = unlimited). */
    void setConflictBudget(std::int64_t b) { conflict_budget_ = b; }

    /** Limit the number of decisions (negative = unlimited). */
    void setDecisionBudget(std::int64_t b) { decision_budget_ = b; }

    /** Ask the search to stop at the next decision boundary. */
    void requestStop() { stop_requested_ = true; }

    /**
     * Observe an external cooperative stop token (shared across
     * threads, e.g. by a portfolio racing several solvers). The
     * token is polled at every decision and after every conflict, so
     * cancellation latency is one loop body. Unlike requestStop()
     * the token persists across solve() calls; pass nullptr to
     * detach. The solver never writes the token.
     */
    void setStopToken(const StopToken *token) { stop_token_ = token; }

    // ------------------------------------------------------------------
    // Hybrid-integration surface
    // ------------------------------------------------------------------

    /**
     * Hook invoked at the top of every decision iteration, before
     * the branching literal is picked. The hook may inspect the
     * solver, force phases, bump variables or requestStop().
     */
    using IterationHook = std::function<void(Solver &)>;
    void setIterationHook(IterationHook hook) { hook_ = std::move(hook); }

    /**
     * Hook invoked right after each conflict is analyzed and the
     * learnt clause recorded (the clause-activity epoch boundary).
     * Gives asynchronous sampling pipelines a completion-
     * notification point: in-flight samples built from the
     * pre-conflict clause queue can be reconciled (harvested or
     * marked stale) without waiting for the next decision. The hook
     * must not mutate the trail; phase hints, priority bumps and
     * requestStop() are allowed.
     */
    using ConflictHook = std::function<void(Solver &)>;
    void
    setConflictHook(ConflictHook hook)
    {
        conflict_hook_ = std::move(hook);
    }

    /**
     * Hook invoked for every clause learned from a conflict
     * (including units), with the learnt literals in asserting-first
     * order. Gives a portfolio layer an export tap for clause
     * sharing. Must not mutate the solver; it runs inside conflict
     * handling.
     */
    using LearntExportHook = std::function<void(const LitVec &)>;
    void
    setLearntExportHook(LearntExportHook hook)
    {
        export_hook_ = std::move(hook);
    }

    /**
     * Hook invoked whenever the search is at decision level 0 (after
     * root simplification, before the next decision) — the only
     * point where foreign clauses can be soundly attached. The hook
     * may call importClause()/suggestPhase()/requestStop().
     */
    using RootHook = std::function<void(Solver &)>;
    void setRootHook(RootHook hook) { root_hook_ = std::move(hook); }

    /**
     * Import a clause learned elsewhere (same variable space).
     * Root-level only (asserted): the clause is simplified against
     * the level-0 trail and attached to the learnt database, so the
     * usual reduction policy can drop it again. Units are enqueued
     * and propagated immediately.
     *
     * @return false iff the import refuted the formula (okay()
     *         becomes false), which a portfolio treats as UNSAT.
     */
    bool importClause(LitVec lits);

    /**
     * Force the next decisions on @p v to use polarity @p phase
     * (true = positive). Overrides phase saving until reassigned.
     */
    void setPhase(Var v, bool phase);

    /**
     * Soft polarity hint: seeds the phase-saving state with @p
     * phase, so the next decision on @p v starts there but later
     * assignments overwrite it (safer than setPhase for external
     * guidance that may be stale).
     */
    void suggestPhase(Var v, bool phase);

    /** Clear a forced phase, returning @p v to saved-phase policy. */
    void clearPhase(Var v);

    /**
     * Multiply-bump a variable's branching score so it is decided
     * soon (used by feedback strategy 4).
     */
    void bumpVarPriority(Var v, double factor = 1.0);

    // ------------------------------------------------------------------
    // Instrumentation (per original clause; requires
    // SolverOptions::instrument_clauses)
    // ------------------------------------------------------------------

    /** Visits of clause @p idx during propagation (Fig. 5). */
    std::uint64_t
    clausePropagationVisits(int idx) const
    {
        return visits_prop_[idx];
    }

    /** Visits of clause @p idx during conflict resolving (Fig. 5). */
    std::uint64_t
    clauseConflictVisits(int idx) const
    {
        return visits_confl_[idx];
    }

    /**
     * Conflict-frequency activity score of original clause @p idx
     * (starts at 1, +1 whenever the clause participates in a
     * conflict resolution; §IV-A).
     */
    double clauseActivityScore(int idx) const { return paper_score_[idx]; }

    /** Number of instrumented original clauses. */
    int numOriginalClauses() const
    {
        return static_cast<int>(paper_score_.size());
    }

    /** @return literals of original clause @p idx (from the input). */
    const LitVec &originalClause(int idx) const { return source_[idx]; }

    /**
     * @return true iff original clause @p idx is satisfied under the
     * current (possibly partial) trail. O(1) when
     * SolverOptions::incremental_clause_tracking is on, otherwise a
     * scan of the clause's literals.
     */
    bool originalClauseSatisfiedNow(int idx) const;

    /** Indices of original clauses not yet satisfied by the trail. */
    std::vector<int> unsatisfiedOriginalClauses() const;

    /**
     * Fill @p out with the indices of unsatisfied original clauses,
     * ascending, reusing @p out's capacity. With incremental
     * tracking this is O(unsat · log unsat) (sorted copy of the live
     * set); without it, a full O(M·3) scan.
     */
    void unsatisfiedOriginalClausesInto(std::vector<int> &out) const;

    /** Search statistics. */
    const SolverStats &stats() const { return stats_; }

    /** @return the configured options (read-only). */
    const SolverOptions &options() const { return opts_; }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /**
     * Resolve record handles against @p registry (nullptr detaches).
     * SolverStats stays the live in-loop counter block; the solver
     * publishes deltas into the registry at restart boundaries and at
     * the end of every solve, so the hot path is untouched and a
     * detached solver pays one branch per cold publish site. Restart
     * events (number, conflict limit) go to the registry's trace
     * sink when one is attached.
     */
    void attachMetrics(MetricsRegistry *registry);

    /**
     * Test shim: lower the clause arena's capacity limit so the
     * 32-bit overflow guard (gc-then-panic) can be exercised without
     * allocating the full CRef address space.
     */
    void
    setArenaCapacityLimitForTest(std::size_t words)
    {
        arena_.setCapacityLimitForTest(words);
    }

    /**
     * Conflict limit of the @p restart_number-th restart. Geometric
     * schedules (`pow(restart_inc, n) * restart_first`) overflow any
     * integer after a few dozen restarts, so the limit saturates at
     * INT64_MAX instead of invoking cast UB; always >= 1. Public for
     * the restart-overflow regression tests.
     */
    std::int64_t restartLimit(int restart_number) const;

  private:
    // --- internal types ------------------------------------------------
    struct Watcher
    {
        CRef cref;
        Lit blocker;
    };

    struct VarData
    {
        CRef reason = CRef_Undef;
        int level = 0;
    };

    // --- propagation ---------------------------------------------------
    void attachClause(CRef cr);
    void detachClause(CRef cr);
    bool enqueue(Lit p, CRef from);
    CRef propagate();

    // --- conflict analysis ----------------------------------------------
    void analyze(CRef confl, LitVec &out_learnt, int &out_btlevel);
    void analyzeFinal(Lit p, LitVec &out_conflict);
    bool litRedundant(Lit p, std::uint32_t abstract_levels);
    void cancelUntil(int level);

    // --- branching -------------------------------------------------------
    Lit pickBranchLit();
    void insertVarOrder(Var v);
    void bumpVarActivity(Var v, double inc);
    void decayVarActivity();
    void chbUpdate(Var v, bool in_conflict);

    // --- learnt DB management ---------------------------------------------
    void bumpClauseActivity(Clause &c);
    void decayClauseActivity();
    void reduceDB();
    void removeClause(CRef cr);
    bool isLocked(const Clause &c) const;
    void garbageCollect();
    void relocAll(ClauseArena &to);
    bool simplifyAtRoot();

    // --- search ------------------------------------------------------------
    lbool solveInternal();
    lbool search(std::int64_t max_conflicts);
    bool budgetExhausted() const;

    void noteClauseInConflict(const Clause &c);

    /** Add SolverStats deltas since the last publish to the registry. */
    void publishMetrics();

    // --- data ----------------------------------------------------------------
    SolverOptions opts_;
    Rng rng_;

    ClauseArena arena_;
    std::vector<CRef> originals_;
    std::vector<CRef> learnts_;

    std::vector<std::vector<Watcher>> watches_; // indexed by Lit.x
    std::vector<lbool> assigns_;
    std::vector<VarData> vardata_;
    std::vector<bool> polarity_;     // saved phase (true = negative!)
    std::vector<lbool> user_phase_;  // forced phase, l_Undef if none
    std::vector<char> seen_;
    std::vector<Lit> analyze_stack_;
    std::vector<Lit> analyze_clear_;

    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    int qhead_ = 0;

    std::vector<double> scores_; // branching scores (VSIDS or CHB)
    VarOrderHeap order_heap_;
    double var_inc_ = 1.0;
    double cla_inc_ = 1.0;
    double chb_alpha_ = 0.4;
    std::vector<std::uint64_t> chb_last_conflict_;

    double max_learnts_ = 0.0;
    int learntsize_adjust_cnt_ = 0;
    double learntsize_adjust_confl_ = 0.0;

    /** requestStop() or an external stop-token trip. */
    bool stopNow() const
    {
        return stop_requested_ ||
               (stop_token_ && stop_token_->stopRequested());
    }

    bool ok_ = true;
    bool stop_requested_ = false;
    const StopToken *stop_token_ = nullptr;
    std::int64_t conflict_budget_ = -1;
    std::int64_t decision_budget_ = -1;

    std::vector<lbool> model_;
    LitVec assumptions_;
    LitVec final_conflict_;
    SolverStats stats_;

    /**
     * Handles into an attached MetricsRegistry, all null when
     * detached (the one-branch-per-record-site contract). Counters
     * receive SolverStats deltas from publishMetrics().
     */
    struct MetricHandles
    {
        Counter *decisions = nullptr;
        Counter *propagations = nullptr;
        Counter *conflicts = nullptr;
        Counter *restarts = nullptr;
        Counter *reduce_dbs = nullptr;
        Counter *learned_clauses = nullptr;
        Counter *removed_clauses = nullptr;
        Counter *minimized_literals = nullptr;
        Counter *exported_clauses = nullptr;
        Counter *imported_clauses = nullptr;
        Counter *iterations = nullptr;
        MetricTimer *search_s = nullptr;
        Gauge *propagations_per_s = nullptr;
        TraceSink *trace = nullptr;
    };
    MetricHandles metrics_;
    SolverStats metrics_base_; ///< last published SolverStats values

    IterationHook hook_;
    ConflictHook conflict_hook_;
    LearntExportHook export_hook_;
    RootHook root_hook_;

    // Instrumentation state (parallel to the source Cnf clauses).
    std::vector<LitVec> source_;
    std::vector<std::uint64_t> visits_prop_;
    std::vector<std::uint64_t> visits_confl_;
    std::vector<double> paper_score_;

    // --- incremental satisfied-clause tracking -------------------------
    // Enabled by SolverOptions::incremental_clause_tracking (requires
    // instrument_clauses). sat_count_[i] is the number of currently
    // true literals of original clause i; the unsat clauses form a
    // sparse set (unsat_list_ + positions) maintained at the two
    // assignment boundaries (enqueue / cancelUntil), so enumeration
    // is O(unsat) instead of an O(M·3) trail rescan.
    void untrackOriginal(int idx);
    void trackOriginal(int idx);
    void unsatAdd(int ci);
    void unsatRemove(int ci);

    bool track_sat_ = false;
    std::vector<std::vector<int>> lit_occurs_; // indexed by Lit.x
    std::vector<int> sat_count_;               // per original clause
    std::vector<int> unsat_list_;              // sparse-set contents
    std::vector<int> unsat_pos_; // index into unsat_list_, -1 if absent
};

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_SOLVER_H
