/**
 * @file
 * WalkSAT stochastic local search. Used as a classical point of
 * comparison and inside tests as an independent satisfiability
 * witness generator.
 */

#ifndef HYQSAT_SAT_WALKSAT_H
#define HYQSAT_SAT_WALKSAT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::sat {

/** WalkSAT configuration. */
struct WalkSatOptions
{
    /** Probability of a random (non-greedy) flip inside a clause. */
    double noise = 0.5;
    /** Maximum variable flips before giving up. */
    std::uint64_t max_flips = 1'000'000;
    /** Number of random restarts. */
    int max_tries = 10;
    std::uint64_t seed = 0xda7a5eed;
};

/** WalkSAT outcome. */
struct WalkSatResult
{
    bool satisfiable = false;      ///< model found (UNSAT is never proven)
    std::vector<bool> model;       ///< valid when satisfiable
    std::uint64_t flips = 0;       ///< total flips across tries
};

/** Run WalkSAT on @p cnf. */
WalkSatResult walkSat(const Cnf &cnf, const WalkSatOptions &opts = {});

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_WALKSAT_H
