/**
 * @file
 * Arena-allocated clause storage for the CDCL solver.
 *
 * Clauses live contiguously in one uint32 region and are referenced
 * by 32-bit offsets (CRef), halving pointer footprint and keeping
 * propagation cache-friendly. Layout per clause:
 *
 *   word 0: [ size : 27 | lbd-cached : 1 | reloced : 1 | learnt : 1 ]
 *   word 1: float activity (learnt) or original clause index
 *   word 2..: literals
 *
 * Garbage collection is by copying live clauses to a fresh arena.
 */

#ifndef HYQSAT_SAT_CLAUSE_H
#define HYQSAT_SAT_CLAUSE_H

#include <algorithm>
#include <cstring>
#include <vector>

#include "sat/types.h"
#include "util/logging.h"

namespace hyqsat::sat {

/** Reference to a clause inside a ClauseArena. */
using CRef = std::uint32_t;

/** Sentinel for "no clause" (also used as the decision reason). */
constexpr CRef CRef_Undef = ~0u;

/** View of one clause stored in the arena. */
class Clause
{
  public:
    /** @return the number of literals. */
    int size() const { return static_cast<int>(header_ >> 5); }

    /** @return true for a learnt (conflict-derived) clause. */
    bool learnt() const { return header_ & 1; }

    /** Mark/query relocation during garbage collection. */
    bool reloced() const { return header_ & 2; }
    void setReloced() { header_ |= 2; }

    /** Access literal @p i. */
    Lit &operator[](int i) { return lits()[i]; }
    const Lit &operator[](int i) const { return lits()[i]; }

    Lit *begin() { return lits(); }
    Lit *end() { return lits() + size(); }
    const Lit *begin() const { return lits(); }
    const Lit *end() const { return lits() + size(); }

    /** Learnt-clause activity (bumped during conflict analysis). */
    float
    activity() const
    {
        float a;
        std::memcpy(&a, &extra_, sizeof(a));
        return a;
    }

    void
    setActivity(float a)
    {
        std::memcpy(&extra_, &a, sizeof(a));
    }

    /** Index of the original clause in the input Cnf (non-learnt). */
    std::uint32_t originalIndex() const { return extra_; }
    void setOriginalIndex(std::uint32_t idx) { extra_ = idx; }

    /** Relocation forwarding address (after setReloced()). */
    CRef relocation() const { return extra_; }
    void setRelocation(CRef to) { extra_ = to; }

    /** Shrink the clause to @p new_size literals (never grows). */
    void
    shrink(int new_size)
    {
        if (new_size > size())
            panic("Clause::shrink cannot grow a clause");
        header_ = (static_cast<std::uint32_t>(new_size) << 5) |
                  (header_ & 0x1f);
    }

  private:
    friend class ClauseArena;

    void
    init(int size, bool learnt)
    {
        header_ = (static_cast<std::uint32_t>(size) << 5) |
                  (learnt ? 1u : 0u);
        extra_ = 0;
    }

    Lit *lits() { return reinterpret_cast<Lit *>(this + 1); }
    const Lit *
    lits() const
    {
        return reinterpret_cast<const Lit *>(this + 1);
    }

    std::uint32_t header_;
    std::uint32_t extra_;
};

static_assert(sizeof(Clause) == 8, "Clause header must be two words");
static_assert(sizeof(Lit) == 4, "Lit must be one word");

/** Region allocator for clauses, addressed by CRef. */
class ClauseArena
{
  public:
    ClauseArena() { memory_.reserve(1 << 16); }

    /**
     * Hard capacity of the arena in words: a clause must start at a
     * CRef strictly below CRef_Undef and fit entirely inside the
     * 32-bit address space, so the region can never grow past
     * CRef_Undef words (the sentinel itself stays unaddressable).
     */
    static constexpr std::size_t kMaxWords =
        static_cast<std::size_t>(CRef_Undef);

    /**
     * Would allocating a clause of @p num_lits literals exceed the
     * CRef address space? Callers holding reclaimable garbage should
     * garbage-collect when this trips; alloc() panics instead of
     * handing out a colliding/truncated reference.
     */
    bool
    wouldExceed(std::size_t num_lits) const
    {
        return memory_.size() + 2 + num_lits > capacity_limit_;
    }

    /** Allocate a clause with the given literals. */
    CRef
    alloc(const LitVec &lits, bool learnt)
    {
        const std::size_t need = 2 + lits.size();
        const std::size_t at = memory_.size();
        if (at + need > capacity_limit_) {
            panic("ClauseArena overflow: %zu + %zu words exceeds the "
                  "32-bit CRef address space (limit %zu words); the "
                  "learnt database outgrew the arena and garbage "
                  "collection could not reclaim enough space",
                  at, need, capacity_limit_);
        }
        // Explicit geometric growth: doubling keeps the amortized
        // copy cost constant and makes the reallocation policy
        // independent of the standard library's resize factor.
        if (memory_.capacity() < at + need) {
            memory_.reserve(
                std::min(capacity_limit_,
                         std::max(at + need, 2 * memory_.capacity())));
        }
        memory_.resize(at + need);
        auto &c = ref(static_cast<CRef>(at));
        c.init(static_cast<int>(lits.size()), learnt);
        // Lit is a trivially copyable 4-byte word (static_asserted
        // below), laid out back to back after the two header words.
        if (!lits.empty()) {
            std::memcpy(&memory_[at + 2], lits.data(),
                        lits.size() * sizeof(Lit));
        }
        ++num_clauses_;
        return static_cast<CRef>(at);
    }

    /**
     * Lower the capacity limit (test shim): lets the overflow guard
     * be exercised without allocating 16 GiB. Clamped to kMaxWords.
     */
    void
    setCapacityLimitForTest(std::size_t words)
    {
        capacity_limit_ = std::min(words, kMaxWords);
    }

    /** Dereference a clause. */
    Clause &
    ref(CRef cr)
    {
        return *reinterpret_cast<Clause *>(&memory_[cr]);
    }

    const Clause &
    ref(CRef cr) const
    {
        return *reinterpret_cast<const Clause *>(&memory_[cr]);
    }

    /** Mark a clause as dead; space is reclaimed at the next gc. */
    void
    free(CRef cr)
    {
        wasted_ += 2 + static_cast<std::size_t>(ref(cr).size());
        --num_clauses_;
    }

    /** @return total words allocated. */
    std::size_t size() const { return memory_.size(); }

    /** @return words belonging to freed clauses. */
    std::size_t wasted() const { return wasted_; }

    /** @return the number of live clauses. */
    std::size_t numClauses() const { return num_clauses_; }

    /**
     * Relocate clause @p cr into @p to (copying if not already
     * moved) and update @p cr to the new reference.
     */
    void
    reloc(CRef &cr, ClauseArena &to)
    {
        Clause &c = ref(cr);
        if (c.reloced()) {
            cr = c.relocation();
            return;
        }
        LitVec lits(c.begin(), c.end());
        CRef moved = to.alloc(lits, c.learnt());
        Clause &nc = to.ref(moved);
        if (c.learnt())
            nc.setActivity(c.activity());
        else
            nc.setOriginalIndex(c.originalIndex());
        c.setReloced();
        c.setRelocation(moved);
        cr = moved;
    }

    /** Swap contents with @p other (used to finish a gc cycle). */
    void
    swap(ClauseArena &other)
    {
        // capacity_limit_ intentionally stays with each arena: a gc
        // compaction arena is unconstrained while it fills, and the
        // solver's arena keeps its configured limit after the swap.
        memory_.swap(other.memory_);
        std::swap(wasted_, other.wasted_);
        std::swap(num_clauses_, other.num_clauses_);
    }

  private:
    std::vector<std::uint32_t> memory_;
    std::size_t wasted_ = 0;
    std::size_t num_clauses_ = 0;
    std::size_t capacity_limit_ = kMaxWords;
};

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_CLAUSE_H
