/**
 * @file
 * DIMACS CNF reader and writer, so the library interoperates with
 * standard SAT benchmark files (SATLIB, SAT competition).
 *
 * The in-memory `string_view` overload is the single parsing core:
 * the stream, string and file entry points all delegate to it. This
 * is what lets the solver service accept formulas straight off a
 * socket without round-tripping through temp files.
 */

#ifndef HYQSAT_SAT_DIMACS_H
#define HYQSAT_SAT_DIMACS_H

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "sat/cnf.h"

namespace hyqsat::sat {

/**
 * Parse a DIMACS CNF held in memory (zero-copy; no stream, no temp
 * file). Accepts comment lines ('c ...'), one 'p cnf <vars>
 * <clauses>' header, and 0-terminated clauses (which may span
 * lines). A '%' line ends the formula (SATLIB trailer). Tolerates a
 * clause count that disagrees with the header (warns).
 *
 * @return the formula, or std::nullopt on malformed input.
 */
std::optional<Cnf> parseDimacs(std::string_view text);

/** Parse a DIMACS CNF stream (slurps, then parses in memory). */
std::optional<Cnf> parseDimacs(std::istream &in);

/** Parse a DIMACS CNF from a string. */
std::optional<Cnf> parseDimacsString(const std::string &text);

/** Parse a DIMACS CNF file; fatal() if the file cannot be opened. */
std::optional<Cnf> parseDimacsFile(const std::string &path);

/** Serialize @p cnf in DIMACS format. */
std::string toDimacsString(const Cnf &cnf);

/** Write @p cnf to @p path; fatal() on I/O failure. */
void writeDimacsFile(const Cnf &cnf, const std::string &path);

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_DIMACS_H
