#include "sat/dimacs.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace hyqsat::sat {

std::optional<Cnf>
parseDimacs(std::istream &in)
{
    Cnf cnf;
    bool saw_header = false;
    int declared_vars = 0;
    int declared_clauses = 0;

    std::string line;
    LitVec current;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == 'c')
            continue;
        if (line[0] == '%') {
            // SATLIB files end with a "%\n0" trailer; stop here.
            break;
        }
        if (line[0] == 'p') {
            std::istringstream hdr(line);
            std::string p, fmt;
            hdr >> p >> fmt >> declared_vars >> declared_clauses;
            if (fmt != "cnf" || hdr.fail() || declared_vars < 0 ||
                declared_clauses < 0) {
                warn("malformed DIMACS header: %s", line.c_str());
                return std::nullopt;
            }
            saw_header = true;
            cnf.ensureVars(declared_vars);
            continue;
        }
        std::istringstream body(line);
        long long v;
        while (body >> v) {
            if (v == 0) {
                cnf.addClause(current);
                current.clear();
            } else {
                if (v > INT32_MAX || v < INT32_MIN) {
                    warn("DIMACS literal out of range: %lld", v);
                    return std::nullopt;
                }
                current.push_back(fromDimacs(static_cast<int>(v)));
            }
        }
        if (!body.eof() && body.fail()) {
            // Non-numeric token outside a comment line.
            warn("malformed DIMACS clause line: %s", line.c_str());
            return std::nullopt;
        }
    }
    if (!current.empty()) {
        // A final clause without its 0 terminator is accepted.
        cnf.addClause(current);
    }
    if (!saw_header) {
        warn("DIMACS input has no 'p cnf' header");
        return std::nullopt;
    }
    if (cnf.numClauses() != declared_clauses) {
        warn("DIMACS header declares %d clauses but %d were read",
             declared_clauses, cnf.numClauses());
    }
    return cnf;
}

std::optional<Cnf>
parseDimacsString(const std::string &text)
{
    std::istringstream in(text);
    return parseDimacs(in);
}

std::optional<Cnf>
parseDimacsFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open DIMACS file: %s", path.c_str());
    return parseDimacs(in);
}

std::string
toDimacsString(const Cnf &cnf)
{
    std::ostringstream out;
    if (!cnf.name().empty())
        out << "c " << cnf.name() << "\n";
    out << "p cnf " << cnf.numVars() << " " << cnf.numClauses() << "\n";
    for (const auto &clause : cnf.clauses()) {
        for (Lit p : clause)
            out << toDimacs(p) << " ";
        out << "0\n";
    }
    return out.str();
}

void
writeDimacsFile(const Cnf &cnf, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open file for writing: %s", path.c_str());
    out << toDimacsString(cnf);
    if (!out)
        fatal("I/O error while writing: %s", path.c_str());
}

} // namespace hyqsat::sat
