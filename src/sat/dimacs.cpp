#include "sat/dimacs.h"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace hyqsat::sat {

namespace {

/** Whitespace accepted between DIMACS tokens (istream semantics). */
bool
isSpace(char c)
{
    return c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
           c == '\f';
}

/**
 * Parse one signed integer token starting at @p pos; advances @p pos
 * past it. Mirrors `istream >> long long`: optional +/- sign, at
 * least one digit, failure on anything else (including overflow).
 */
bool
parseNumber(std::string_view line, std::size_t &pos, long long &out)
{
    const char *begin = line.data() + pos;
    const char *end = line.data() + line.size();
    if (begin != end && *begin == '+')
        ++begin; // from_chars rejects '+' but istream accepts it
    const auto res = std::from_chars(begin, end, out);
    if (res.ec != std::errc())
        return false;
    pos = static_cast<std::size_t>(res.ptr - line.data());
    return true;
}

} // namespace

std::optional<Cnf>
parseDimacs(std::string_view text)
{
    Cnf cnf;
    bool saw_header = false;
    int declared_vars = 0;
    int declared_clauses = 0;

    LitVec current;
    std::size_t line_start = 0;
    while (line_start <= text.size()) {
        std::size_t nl = text.find('\n', line_start);
        if (nl == std::string_view::npos) {
            if (line_start == text.size())
                break; // no trailing newline and nothing left
            nl = text.size();
        }
        const std::string_view line =
            text.substr(line_start, nl - line_start);
        line_start = nl + 1;

        if (line.empty())
            continue;
        if (line[0] == 'c')
            continue;
        if (line[0] == '%') {
            // SATLIB files end with a "%\n0" trailer; stop here.
            break;
        }
        if (line[0] == 'p') {
            std::istringstream hdr{std::string(line)};
            std::string p, fmt;
            hdr >> p >> fmt >> declared_vars >> declared_clauses;
            if (fmt != "cnf" || hdr.fail() || declared_vars < 0 ||
                declared_clauses < 0) {
                warn("malformed DIMACS header: %.*s",
                     static_cast<int>(line.size()), line.data());
                return std::nullopt;
            }
            saw_header = true;
            cnf.ensureVars(declared_vars);
            continue;
        }
        std::size_t pos = 0;
        for (;;) {
            while (pos < line.size() && isSpace(line[pos]))
                ++pos;
            if (pos >= line.size())
                break; // clean end of line
            long long v;
            if (!parseNumber(line, pos, v)) {
                // Non-numeric token outside a comment line.
                warn("malformed DIMACS clause line: %.*s",
                     static_cast<int>(line.size()), line.data());
                return std::nullopt;
            }
            if (v == 0) {
                cnf.addClause(current);
                current.clear();
            } else {
                if (v > INT32_MAX || v < INT32_MIN) {
                    warn("DIMACS literal out of range: %lld", v);
                    return std::nullopt;
                }
                current.push_back(fromDimacs(static_cast<int>(v)));
            }
        }
    }
    if (!current.empty()) {
        // A final clause without its 0 terminator is accepted.
        cnf.addClause(current);
    }
    if (!saw_header) {
        warn("DIMACS input has no 'p cnf' header");
        return std::nullopt;
    }
    if (cnf.numClauses() != declared_clauses) {
        warn("DIMACS header declares %d clauses but %d were read",
             declared_clauses, cnf.numClauses());
    }
    return cnf;
}

std::optional<Cnf>
parseDimacs(std::istream &in)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = std::move(buf).str();
    return parseDimacs(std::string_view(text));
}

std::optional<Cnf>
parseDimacsString(const std::string &text)
{
    return parseDimacs(std::string_view(text));
}

std::optional<Cnf>
parseDimacsFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open DIMACS file: %s", path.c_str());
    return parseDimacs(in);
}

std::string
toDimacsString(const Cnf &cnf)
{
    std::ostringstream out;
    if (!cnf.name().empty())
        out << "c " << cnf.name() << "\n";
    out << "p cnf " << cnf.numVars() << " " << cnf.numClauses() << "\n";
    for (const auto &clause : cnf.clauses()) {
        for (Lit p : clause)
            out << toDimacs(p) << " ";
        out << "0\n";
    }
    return out.str();
}

void
writeDimacsFile(const Cnf &cnf, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open file for writing: %s", path.c_str());
    out << toDimacsString(cnf);
    if (!out)
        fatal("I/O error while writing: %s", path.c_str());
}

} // namespace hyqsat::sat
