#include "sat/brute_force.h"

#include <algorithm>

#include "util/logging.h"

namespace hyqsat::sat {

namespace {

std::vector<bool>
unpack(std::uint64_t bits, int n)
{
    std::vector<bool> a(n);
    for (int v = 0; v < n; ++v)
        a[v] = (bits >> v) & 1;
    return a;
}

} // namespace

BruteForceResult
bruteForceSolve(const Cnf &cnf, bool count_all)
{
    const int n = cnf.numVars();
    if (n > 30)
        fatal("bruteForceSolve limited to 30 variables (got %d)", n);

    BruteForceResult result;
    const std::uint64_t total = 1ull << n;
    for (std::uint64_t bits = 0; bits < total; ++bits) {
        const auto a = unpack(bits, n);
        if (cnf.eval(a)) {
            if (!result.satisfiable) {
                result.satisfiable = true;
                result.model = a;
            }
            ++result.num_models;
            if (!count_all)
                return result;
        }
    }
    return result;
}

int
bruteForceMinViolated(const Cnf &cnf)
{
    const int n = cnf.numVars();
    if (n > 30)
        fatal("bruteForceMinViolated limited to 30 variables (got %d)", n);

    int best = cnf.numClauses();
    const std::uint64_t total = 1ull << n;
    for (std::uint64_t bits = 0; bits < total && best > 0; ++bits) {
        const auto a = unpack(bits, n);
        best = std::min(best, cnf.countViolated(a));
    }
    return best;
}

} // namespace hyqsat::sat
