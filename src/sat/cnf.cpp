#include "sat/cnf.h"

#include <algorithm>

#include "util/logging.h"

namespace hyqsat::sat {

void
Cnf::addClause(LitVec clause)
{
    for (Lit p : clause) {
        if (p.var() < 0)
            panic("clause contains an undefined literal");
        ensureVars(p.var() + 1);
    }
    clauses_.push_back(std::move(clause));
}

bool
Cnf::eval(const std::vector<bool> &assignment) const
{
    for (int i = 0; i < numClauses(); ++i)
        if (!clauseSatisfied(i, assignment))
            return false;
    return true;
}

int
Cnf::countViolated(const std::vector<bool> &assignment) const
{
    int violated = 0;
    for (int i = 0; i < numClauses(); ++i)
        if (!clauseSatisfied(i, assignment))
            ++violated;
    return violated;
}

bool
Cnf::clauseSatisfied(int i, const std::vector<bool> &assignment) const
{
    for (Lit p : clauses_[i]) {
        if (p.var() >= static_cast<int>(assignment.size()))
            panic("assignment too short for clause literal");
        if (assignment[p.var()] != p.sign())
            return true;
    }
    return false;
}

int
Cnf::maxClauseSize() const
{
    int longest = 0;
    for (const auto &c : clauses_)
        longest = std::max(longest, static_cast<int>(c.size()));
    return longest;
}

Cnf
toThreeSat(const Cnf &input)
{
    Cnf out(input.numVars());
    out.setName(input.name());
    for (const auto &c : input.clauses()) {
        if (c.size() <= 3) {
            out.addClause(c);
            continue;
        }
        // Chain split: first clause keeps two literals plus a link.
        Var link = out.newVar();
        out.addClause(c[0], c[1], mkLit(link));
        std::size_t i = 2;
        while (i + 2 < c.size()) {
            Var next = out.newVar();
            out.addClause(mkLit(link, true), c[i], mkLit(next));
            link = next;
            ++i;
        }
        // Last clause absorbs the remaining (at most two) literals.
        if (i + 2 == c.size())
            out.addClause(mkLit(link, true), c[i], c[i + 1]);
        else
            out.addClause(mkLit(link, true), c[i]);
    }
    return out;
}

} // namespace hyqsat::sat
