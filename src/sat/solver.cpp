#include "sat/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hyqsat::sat {

namespace {

/** Luby sequence value (finite-subsequence restart scheme). */
double
luby(double y, int x)
{
    int size, seq;
    for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
    }
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        seq--;
        x = x % size;
    }
    return std::pow(y, seq);
}

constexpr double kActivityRescale = 1e100;
constexpr double kClauseActivityRescale = 1e20;

} // namespace

Solver::Solver(const SolverOptions &opts)
    : opts_(opts), rng_(opts.seed), order_heap_(scores_),
      chb_alpha_(opts.chb_alpha), conflict_budget_(opts.conflict_budget),
      decision_budget_(opts.decision_budget),
      track_sat_(opts.incremental_clause_tracking &&
                 opts.instrument_clauses)
{
}

Var
Solver::newVar()
{
    const Var v = numVars();
    watches_.emplace_back();
    watches_.emplace_back();
    assigns_.push_back(l_Undef);
    vardata_.push_back({});
    polarity_.push_back(!opts_.default_phase);
    user_phase_.push_back(l_Undef);
    seen_.push_back(0);
    scores_.push_back(0.0);
    chb_last_conflict_.push_back(0);
    if (track_sat_) {
        lit_occurs_.emplace_back();
        lit_occurs_.emplace_back();
    }
    insertVarOrder(v);
    return v;
}

void
Solver::insertVarOrder(Var v)
{
    if (!order_heap_.inHeap(v) && assigns_[v].isUndef())
        order_heap_.insert(v);
}

bool
Solver::addClause(LitVec lits, int original_index)
{
    // Root-level only: the value()-based simplification below and
    // the tracked sat-counts are sound against a level-0 trail, not
    // against in-search assignments (incremental callers add clauses
    // between solves, where cancelUntil(0) has already run).
    if (decisionLevel() != 0)
        panic("addClause outside the root level");
    if (original_index >= 0 && opts_.instrument_clauses) {
        const auto need = static_cast<std::size_t>(original_index) + 1;
        if (source_.size() < need) {
            source_.resize(need);
            visits_prop_.resize(need, 0);
            visits_confl_.resize(need, 0);
            paper_score_.resize(need, 1.0);
        }
        if (track_sat_)
            untrackOriginal(original_index);
        source_[original_index] = lits;
    }
    for (Lit p : lits) {
        while (p.var() >= numVars())
            newVar();
    }
    if (original_index >= 0 && track_sat_)
        trackOriginal(original_index);
    if (!ok_)
        return false;

    // Root-level simplification: sort, drop duplicates and false
    // literals, detect tautologies and already-satisfied clauses.
    std::sort(lits.begin(), lits.end());
    LitVec simplified;
    Lit prev = lit_Undef;
    for (Lit p : lits) {
        if (value(p).isTrue() || p == ~prev)
            return true; // clause already satisfied / tautology
        if (!value(p).isFalse() && p != prev) {
            simplified.push_back(p);
            prev = p;
        }
    }

    if (simplified.empty()) {
        ok_ = false;
        return false;
    }
    if (simplified.size() == 1) {
        if (!enqueue(simplified[0], CRef_Undef))
            panic("unit enqueue conflicted after value check");
        ok_ = (propagate() == CRef_Undef);
        return ok_;
    }

    CRef cr = arena_.alloc(simplified, false);
    arena_.ref(cr).setOriginalIndex(
        original_index >= 0 ? static_cast<std::uint32_t>(original_index)
                            : ~0u);
    originals_.push_back(cr);
    attachClause(cr);
    return true;
}

bool
Solver::importClause(LitVec lits)
{
    if (!ok_)
        return false;
    if (decisionLevel() != 0)
        panic("importClause outside the root level");

    // Same root-level simplification as addClause, against the
    // level-0 trail (root facts learned since the exporter saw the
    // clause may already satisfy or shrink it).
    std::sort(lits.begin(), lits.end());
    LitVec simplified;
    Lit prev = lit_Undef;
    for (Lit p : lits) {
        if (p.var() >= numVars())
            return ok_; // foreign variable: not our formula, drop
        if (value(p).isTrue() || p == ~prev)
            return true; // already satisfied / tautology
        if (!value(p).isFalse() && p != prev) {
            simplified.push_back(p);
            prev = p;
        }
    }

    ++stats_.imported_clauses;
    if (simplified.empty()) {
        ok_ = false; // the shared clause refutes the formula
        return false;
    }
    if (simplified.size() == 1) {
        if (!enqueue(simplified[0], CRef_Undef))
            panic("import unit enqueue conflicted after value check");
        ok_ = (propagate() == CRef_Undef);
        return ok_;
    }

    // Into the learnt database (not originals_): imports are
    // redundant, so the reduction policy may drop them again.
    if (arena_.wouldExceed(simplified.size()) && arena_.wasted() > 0)
        garbageCollect();
    const CRef cr = arena_.alloc(simplified, true);
    learnts_.push_back(cr);
    attachClause(cr);
    bumpClauseActivity(arena_.ref(cr));
    return true;
}

bool
Solver::loadCnf(const Cnf &cnf)
{
    while (numVars() < cnf.numVars())
        newVar();
    for (int i = 0; i < cnf.numClauses(); ++i) {
        if (!addClause(cnf.clause(i), i))
            return false;
    }
    return true;
}

void
Solver::attachClause(CRef cr)
{
    const Clause &c = arena_.ref(cr);
    if (c.size() < 2)
        panic("attaching a clause with fewer than two literals");
    watches_[(~c[0]).x].push_back({cr, c[1]});
    watches_[(~c[1]).x].push_back({cr, c[0]});
}

void
Solver::detachClause(CRef cr)
{
    const Clause &c = arena_.ref(cr);
    auto strip = [&](Lit w) {
        auto &ws = watches_[(~w).x];
        for (std::size_t i = 0; i < ws.size(); ++i) {
            if (ws[i].cref == cr) {
                ws[i] = ws.back();
                ws.pop_back();
                return;
            }
        }
        panic("detachClause: watcher not found");
    };
    strip(c[0]);
    strip(c[1]);
}

bool
Solver::enqueue(Lit p, CRef from)
{
    if (!value(p).isUndef())
        return value(p).isTrue();
    assigns_[p.var()] = lbool(!p.sign());
    vardata_[p.var()] = {from, decisionLevel()};
    trail_.push_back(p);
    if (track_sat_) {
        // p just became true: every tracked clause containing the
        // literal p gains one satisfied literal.
        for (const int ci : lit_occurs_[p.x])
            if (sat_count_[ci]++ == 0)
                unsatRemove(ci);
    }
    return true;
}

CRef
Solver::propagate()
{
    CRef confl = CRef_Undef;
    while (qhead_ < static_cast<int>(trail_.size())) {
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;
        auto &ws = watches_[p.x];
        std::size_t i = 0, j = 0;
        const std::size_t n = ws.size();
        while (i < n) {
            // Try the blocker first to avoid touching the clause.
            const Watcher w = ws[i];
            if (value(w.blocker).isTrue()) {
                ws[j++] = ws[i++];
                continue;
            }

            Clause &c = arena_.ref(w.cref);
            if (opts_.instrument_clauses && !c.learnt() &&
                c.originalIndex() != ~0u) {
                ++visits_prop_[c.originalIndex()];
            }

            // Normalize so the false literal is in position 1.
            const Lit false_lit = ~p;
            if (c[0] == false_lit)
                std::swap(c[0], c[1]);
            ++i;

            // 0th watch true: keep watching via it as blocker.
            const Watcher keep{w.cref, c[0]};
            if (c[0] != w.blocker && value(c[0]).isTrue()) {
                ws[j++] = keep;
                continue;
            }

            // Look for a new literal to watch.
            bool moved = false;
            for (int k = 2; k < c.size(); ++k) {
                if (!value(c[k]).isFalse()) {
                    std::swap(c[1], c[k]);
                    watches_[(~c[1]).x].push_back(keep);
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;

            // Clause is unit or conflicting.
            ws[j++] = keep;
            if (value(c[0]).isFalse()) {
                confl = w.cref;
                qhead_ = static_cast<int>(trail_.size());
                while (i < n)
                    ws[j++] = ws[i++];
            } else {
                enqueue(c[0], w.cref);
            }
        }
        ws.resize(j);
        if (confl != CRef_Undef)
            break;
    }
    return confl;
}

void
Solver::noteClauseInConflict(const Clause &c)
{
    if (!opts_.instrument_clauses || c.learnt() || c.originalIndex() == ~0u)
        return;
    ++visits_confl_[c.originalIndex()];
    paper_score_[c.originalIndex()] += 1.0;
}

void
Solver::analyze(CRef confl, LitVec &out_learnt, int &out_btlevel)
{
    int path_count = 0;
    Lit p = lit_Undef;
    out_learnt.push_back(lit_Undef); // reserve slot for the UIP
    int index = static_cast<int>(trail_.size()) - 1;

    do {
        Clause &c = arena_.ref(confl);
        if (c.learnt())
            bumpClauseActivity(c);
        noteClauseInConflict(c);

        const int start = (p == lit_Undef) ? 0 : 1;
        for (int k = start; k < c.size(); ++k) {
            const Lit q = c[k];
            const Var v = q.var();
            if (seen_[v] || vardata_[v].level == 0)
                continue;
            seen_[v] = 1;
            if (opts_.branching == Branching::CHB)
                chbUpdate(v, true);
            else
                bumpVarActivity(v, var_inc_);
            if (vardata_[v].level >= decisionLevel())
                ++path_count;
            else
                out_learnt.push_back(q);
        }

        // Walk backwards to the next marked trail literal.
        while (!seen_[trail_[index].var()])
            --index;
        p = trail_[index];
        --index;
        confl = vardata_[p.var()].reason;
        seen_[p.var()] = 0;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Conflict-clause minimization.
    analyze_clear_ = out_learnt;
    std::size_t kept = 1;
    if (opts_.ccmin) {
        std::uint32_t abstract = 0;
        for (std::size_t i = 1; i < out_learnt.size(); ++i) {
            abstract |=
                1u << (vardata_[out_learnt[i].var()].level & 31);
        }
        for (std::size_t i = 1; i < out_learnt.size(); ++i) {
            const Lit q = out_learnt[i];
            if (vardata_[q.var()].reason == CRef_Undef ||
                !litRedundant(q, abstract)) {
                out_learnt[kept++] = q;
            } else {
                ++stats_.minimized_literals;
            }
        }
    } else {
        kept = out_learnt.size();
    }
    out_learnt.resize(kept);

    // Find the backtrack level: the second-highest level in the clause.
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i) {
            if (vardata_[out_learnt[i].var()].level >
                vardata_[out_learnt[max_i].var()].level) {
                max_i = i;
            }
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = vardata_[out_learnt[1].var()].level;
    }

    for (Lit q : analyze_clear_)
        if (q != lit_Undef)
            seen_[q.var()] = 0;
}

void
Solver::analyzeFinal(Lit p, LitVec &out_conflict)
{
    // Which assumptions force ~p? Walk the implication trail
    // backwards from p marking antecedents; decisions met on the
    // way are assumption literals (search() never branches below
    // the assumption levels before calling this).
    out_conflict.clear();
    out_conflict.push_back(p);
    if (decisionLevel() == 0)
        return;

    seen_[p.var()] = 1;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_lim_[0]; --i) {
        const Var v = trail_[i].var();
        if (!seen_[v])
            continue;
        const CRef reason = vardata_[v].reason;
        if (reason == CRef_Undef) {
            if (vardata_[v].level > 0)
                out_conflict.push_back(~trail_[i]);
        } else {
            const Clause &c = arena_.ref(reason);
            for (int k = 1; k < c.size(); ++k) {
                if (vardata_[c[k].var()].level > 0)
                    seen_[c[k].var()] = 1;
            }
        }
        seen_[v] = 0;
    }
    seen_[p.var()] = 0;
}

bool
Solver::litRedundant(Lit p, std::uint32_t abstract_levels)
{
    analyze_stack_.clear();
    analyze_stack_.push_back(p);
    const std::size_t top = analyze_clear_.size();
    while (!analyze_stack_.empty()) {
        const Lit q = analyze_stack_.back();
        analyze_stack_.pop_back();
        const CRef reason = vardata_[q.var()].reason;
        if (reason == CRef_Undef)
            panic("litRedundant reached a decision literal");
        const Clause &c = arena_.ref(reason);
        for (int k = 1; k < c.size(); ++k) {
            const Lit r = c[k];
            const Var v = r.var();
            if (seen_[v] || vardata_[v].level == 0)
                continue;
            if (vardata_[v].reason != CRef_Undef &&
                (1u << (vardata_[v].level & 31)) & abstract_levels) {
                seen_[v] = 1;
                analyze_stack_.push_back(r);
                analyze_clear_.push_back(r);
            } else {
                // Cannot be resolved away: undo the marks we added.
                for (std::size_t i = top; i < analyze_clear_.size(); ++i)
                    seen_[analyze_clear_[i].var()] = 0;
                analyze_clear_.resize(top);
                return false;
            }
        }
    }
    return true;
}

void
Solver::cancelUntil(int level)
{
    if (decisionLevel() <= level)
        return;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_lim_[level]; --i) {
        const Var v = trail_[i].var();
        if (track_sat_) {
            // The literal trail_[i] stops being true: clauses that
            // relied on it as their last satisfied literal return to
            // the unsat set.
            for (const int ci : lit_occurs_[trail_[i].x])
                if (--sat_count_[ci] == 0)
                    unsatAdd(ci);
        }
        assigns_[v] = l_Undef;
        if (opts_.phase_saving)
            polarity_[v] = trail_[i].sign();
        insertVarOrder(v);
    }
    qhead_ = trail_lim_[level];
    trail_.resize(trail_lim_[level]);
    trail_lim_.resize(level);
}

Lit
Solver::pickBranchLit()
{
    Var next = var_Undef;

    if (opts_.random_branch_freq > 0 &&
        rng_.chance(opts_.random_branch_freq)) {
        std::vector<Var> unassigned;
        for (Var v = 0; v < numVars(); ++v)
            if (assigns_[v].isUndef())
                unassigned.push_back(v);
        if (!unassigned.empty())
            next = rng_.pick(unassigned);
    }

    while (next == var_Undef || !assigns_[next].isUndef()) {
        if (order_heap_.empty())
            return lit_Undef;
        next = order_heap_.removeMax();
    }

    bool sign;
    if (!user_phase_[next].isUndef())
        sign = user_phase_[next].isFalse();
    else if (opts_.phase_saving)
        sign = polarity_[next];
    else
        sign = !opts_.default_phase;
    return mkLit(next, sign);
}

void
Solver::setPhase(Var v, bool phase)
{
    user_phase_[v] = lbool(phase);
}

void
Solver::clearPhase(Var v)
{
    user_phase_[v] = l_Undef;
}

void
Solver::suggestPhase(Var v, bool phase)
{
    polarity_[v] = !phase; // stored as the decision literal's sign
}

void
Solver::bumpVarPriority(Var v, double factor)
{
    bumpVarActivity(v, var_inc_ * factor);
}

void
Solver::bumpVarActivity(Var v, double inc)
{
    scores_[v] += inc;
    if (scores_[v] > kActivityRescale) {
        for (auto &s : scores_)
            s *= 1.0 / kActivityRescale;
        var_inc_ *= 1.0 / kActivityRescale;
    }
    order_heap_.update(v);
}

void
Solver::decayVarActivity()
{
    var_inc_ *= 1.0 / opts_.var_decay;
}

void
Solver::chbUpdate(Var v, bool in_conflict)
{
    const double multiplier = in_conflict ? 1.0 : 0.9;
    const auto age = static_cast<double>(
        stats_.conflicts - chb_last_conflict_[v] + 1);
    const double reward = multiplier / age;
    scores_[v] = (1.0 - chb_alpha_) * scores_[v] + chb_alpha_ * reward;
    chb_last_conflict_[v] = stats_.conflicts;
    order_heap_.update(v);
}

void
Solver::bumpClauseActivity(Clause &c)
{
    c.setActivity(c.activity() + static_cast<float>(cla_inc_));
    if (c.activity() > kClauseActivityRescale) {
        for (CRef cr : learnts_) {
            Clause &lc = arena_.ref(cr);
            lc.setActivity(
                lc.activity() *
                static_cast<float>(1.0 / kClauseActivityRescale));
        }
        cla_inc_ *= 1.0 / kClauseActivityRescale;
    }
}

void
Solver::decayClauseActivity()
{
    cla_inc_ *= 1.0 / opts_.clause_decay;
}

bool
Solver::isLocked(const Clause &c) const
{
    const CRef reason = vardata_[c[0].var()].reason;
    if (reason == CRef_Undef || !value(c[0]).isTrue())
        return false;
    return &arena_.ref(reason) == &c;
}

void
Solver::removeClause(CRef cr)
{
    Clause &c = arena_.ref(cr);
    detachClause(cr);
    if (isLocked(c))
        vardata_[c[0].var()].reason = CRef_Undef;
    arena_.free(cr);
    ++stats_.removed_clauses;
}

void
Solver::reduceDB()
{
    ++stats_.reduce_dbs;
    std::sort(learnts_.begin(), learnts_.end(),
              [&](CRef a, CRef b) {
                  const Clause &ca = arena_.ref(a);
                  const Clause &cb = arena_.ref(b);
                  if ((ca.size() > 2) != (cb.size() > 2))
                      return ca.size() > 2;
                  return ca.activity() < cb.activity();
              });

    const double extra_lim =
        cla_inc_ / std::max<std::size_t>(learnts_.size(), 1);
    const auto keep_from = static_cast<std::size_t>(
        static_cast<double>(learnts_.size()) *
        (1.0 - opts_.learnt_keep_ratio));

    std::size_t j = 0;
    for (std::size_t i = 0; i < learnts_.size(); ++i) {
        const Clause &c = arena_.ref(learnts_[i]);
        const bool removable = c.size() > 2 && !isLocked(c) &&
                               (i < keep_from || c.activity() < extra_lim);
        if (removable)
            removeClause(learnts_[i]);
        else
            learnts_[j++] = learnts_[i];
    }
    learnts_.resize(j);

    if (arena_.wasted() > arena_.size() / 5)
        garbageCollect();
}

void
Solver::relocAll(ClauseArena &to)
{
    for (auto &cr : originals_)
        arena_.reloc(cr, to);
    for (auto &cr : learnts_)
        arena_.reloc(cr, to);
    for (Lit p : trail_) {
        auto &reason = vardata_[p.var()].reason;
        if (reason != CRef_Undef) {
            // A reason may already have been freed at root level.
            Clause &c = arena_.ref(reason);
            if (c.reloced() || isLocked(c))
                arena_.reloc(reason, to);
            else
                reason = CRef_Undef;
        }
    }
}

void
Solver::garbageCollect()
{
    ClauseArena to;
    relocAll(to);
    arena_.swap(to);
    // Rebuild the watch lists against the relocated clauses.
    for (auto &ws : watches_)
        ws.clear();
    for (CRef cr : originals_)
        attachClause(cr);
    for (CRef cr : learnts_)
        attachClause(cr);
}

bool
Solver::simplifyAtRoot()
{
    if (decisionLevel() != 0)
        panic("simplifyAtRoot called above the root level");
    if (propagate() != CRef_Undef) {
        ok_ = false;
        return false;
    }
    auto sweep = [&](std::vector<CRef> &list) {
        std::size_t j = 0;
        for (std::size_t i = 0; i < list.size(); ++i) {
            const Clause &c = arena_.ref(list[i]);
            bool satisfied = false;
            for (const Lit p : c) {
                if (value(p).isTrue()) {
                    satisfied = true;
                    break;
                }
            }
            if (satisfied && !isLocked(c))
                removeClause(list[i]);
            else
                list[j++] = list[i];
        }
        list.resize(j);
    };
    sweep(learnts_);
    sweep(originals_);
    return true;
}

std::int64_t
Solver::restartLimit(int restart_number) const
{
    const double raw =
        opts_.luby_restarts
            ? luby(2.0, restart_number) * opts_.restart_first
            : std::pow(opts_.restart_inc, restart_number) *
                  opts_.restart_first;
    // Geometric schedules exceed any integer after a few dozen
    // restarts; saturate (the !(raw < max) form also catches NaN)
    // instead of letting the cast hit UB.
    constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
    if (!(raw < static_cast<double>(kMax)))
        return kMax;
    return std::max<std::int64_t>(static_cast<std::int64_t>(raw), 1);
}

void
Solver::attachMetrics(MetricsRegistry *registry)
{
    if (!registry) {
        metrics_ = {};
        return;
    }
    metrics_.decisions = registry->counter("solver.decisions");
    metrics_.propagations = registry->counter("solver.propagations");
    metrics_.conflicts = registry->counter("solver.conflicts");
    metrics_.restarts = registry->counter("solver.restarts");
    metrics_.reduce_dbs = registry->counter("solver.reduce_dbs");
    metrics_.learned_clauses =
        registry->counter("solver.learned_clauses");
    metrics_.removed_clauses =
        registry->counter("solver.removed_clauses");
    metrics_.minimized_literals =
        registry->counter("solver.minimized_literals");
    metrics_.exported_clauses =
        registry->counter("solver.exported_clauses");
    metrics_.imported_clauses =
        registry->counter("solver.imported_clauses");
    metrics_.iterations = registry->counter("solver.iterations");
    metrics_.search_s = registry->timer("solver.search");
    metrics_.propagations_per_s =
        registry->gauge("solver.propagations_per_s");
    metrics_.trace = registry->trace();
    // Publish future deltas only: attaching mid-life must not replay
    // counts an earlier registry already received.
    metrics_base_ = stats_;
}

void
Solver::publishMetrics()
{
    if (!metrics_.decisions)
        return;
    const auto publish = [](Counter *c, std::uint64_t cur,
                            std::uint64_t &base) {
        if (cur > base)
            c->add(cur - base);
        base = cur;
    };
    publish(metrics_.decisions, stats_.decisions,
            metrics_base_.decisions);
    publish(metrics_.propagations, stats_.propagations,
            metrics_base_.propagations);
    publish(metrics_.conflicts, stats_.conflicts,
            metrics_base_.conflicts);
    publish(metrics_.restarts, stats_.restarts, metrics_base_.restarts);
    publish(metrics_.reduce_dbs, stats_.reduce_dbs,
            metrics_base_.reduce_dbs);
    publish(metrics_.learned_clauses, stats_.learned_clauses,
            metrics_base_.learned_clauses);
    publish(metrics_.removed_clauses, stats_.removed_clauses,
            metrics_base_.removed_clauses);
    publish(metrics_.minimized_literals, stats_.minimized_literals,
            metrics_base_.minimized_literals);
    publish(metrics_.exported_clauses, stats_.exported_clauses,
            metrics_base_.exported_clauses);
    publish(metrics_.imported_clauses, stats_.imported_clauses,
            metrics_base_.imported_clauses);
    publish(metrics_.iterations, stats_.iterations,
            metrics_base_.iterations);
}

bool
Solver::budgetExhausted() const
{
    if (conflict_budget_ >= 0 &&
        stats_.conflicts >= static_cast<std::uint64_t>(conflict_budget_)) {
        return true;
    }
    if (decision_budget_ >= 0 &&
        stats_.decisions >= static_cast<std::uint64_t>(decision_budget_)) {
        return true;
    }
    return false;
}

lbool
Solver::search(std::int64_t max_conflicts)
{
    std::int64_t conflicts_here = 0;
    LitVec learnt;

    for (;;) {
        const CRef confl = propagate();
        if (confl != CRef_Undef) {
            ++stats_.conflicts;
            ++conflicts_here;
            if (decisionLevel() == 0)
                return l_False;
            if (decisionLevel() <=
                static_cast<int>(assumptions_.size())) {
                // Conflict inside the assumption prefix: collect
                // the responsible assumptions and stop.
                final_conflict_.clear();
                const Clause &c = arena_.ref(confl);
                for (const Lit q : c) {
                    if (vardata_[q.var()].level > 0)
                        seen_[q.var()] = 1;
                }
                for (int i = static_cast<int>(trail_.size()) - 1;
                     i >= trail_lim_[0]; --i) {
                    const Var v = trail_[i].var();
                    if (!seen_[v])
                        continue;
                    const CRef reason = vardata_[v].reason;
                    if (reason == CRef_Undef) {
                        final_conflict_.push_back(~trail_[i]);
                    } else {
                        const Clause &rc = arena_.ref(reason);
                        for (int k = 1; k < rc.size(); ++k)
                            if (vardata_[rc[k].var()].level > 0)
                                seen_[rc[k].var()] = 1;
                    }
                    seen_[v] = 0;
                }
                return l_False;
            }

            learnt.clear();
            int backtrack_level = 0;
            analyze(confl, learnt, backtrack_level);
            cancelUntil(backtrack_level);

            if (learnt.size() == 1) {
                enqueue(learnt[0], CRef_Undef);
            } else {
                // Saturating capacity guard: reclaim freed space
                // before the arena would outgrow the CRef address
                // space (alloc panics if gc cannot make room).
                if (arena_.wouldExceed(learnt.size()) &&
                    arena_.wasted() > 0) {
                    garbageCollect();
                }
                const CRef cr = arena_.alloc(learnt, true);
                learnts_.push_back(cr);
                attachClause(cr);
                bumpClauseActivity(arena_.ref(cr));
                enqueue(learnt[0], cr);
                ++stats_.learned_clauses;
            }

            if (export_hook_) {
                ++stats_.exported_clauses;
                export_hook_(learnt);
            }

            if (opts_.branching != Branching::CHB)
                decayVarActivity();
            decayClauseActivity();
            chb_alpha_ = std::max(opts_.chb_alpha_min,
                                  chb_alpha_ - opts_.chb_alpha_decay);

            // The clause-activity basis just changed: notify the
            // hybrid layer so it can reconcile in-flight samples
            // against the rebuilt queue without waiting for the
            // next decision.
            if (conflict_hook_)
                conflict_hook_(*this);

            if (--learntsize_adjust_cnt_ <= 0) {
                learntsize_adjust_confl_ *= 1.5;
                learntsize_adjust_cnt_ =
                    static_cast<int>(learntsize_adjust_confl_);
                max_learnts_ *= opts_.learnt_size_inc;
            }

            // External cancellation point: a racing portfolio must
            // be able to cut a conflict streak short, not just wait
            // for the next conflict-free decision. requestStop() is
            // deliberately NOT checked here so single-threaded stop
            // semantics (and the determinism guard) are unchanged.
            if (stop_token_ && stop_token_->stopRequested()) {
                cancelUntil(0);
                return l_Undef;
            }
        } else {
            if ((max_conflicts >= 0 && conflicts_here >= max_conflicts) ||
                budgetExhausted() || stopNow()) {
                cancelUntil(0);
                return l_Undef;
            }
            if (decisionLevel() == 0 && !simplifyAtRoot())
                return l_False;
            if (decisionLevel() == 0 && root_hook_) {
                // Clause-sharing import point: the trail holds only
                // level-0 facts here, so foreign clauses attach
                // soundly (see importClause).
                root_hook_(*this);
                if (!ok_)
                    return l_False;
            }
            if (static_cast<double>(learnts_.size()) >=
                max_learnts_ + static_cast<double>(trail_.size())) {
                reduceDB();
            }

            // Pending assumptions take priority over branching.
            Lit next = lit_Undef;
            while (decisionLevel() <
                   static_cast<int>(assumptions_.size())) {
                const Lit a = assumptions_[decisionLevel()];
                if (value(a).isTrue()) {
                    // Already satisfied: open an empty level so the
                    // level <-> assumption indexing stays aligned.
                    trail_lim_.push_back(
                        static_cast<int>(trail_.size()));
                } else if (value(a).isFalse()) {
                    analyzeFinal(~a, final_conflict_);
                    return l_False;
                } else {
                    next = a;
                    break;
                }
            }

            if (next == lit_Undef) {
                if (hook_)
                    hook_(*this);
                if (stopNow()) {
                    cancelUntil(0);
                    return l_Undef;
                }
                next = pickBranchLit();
                if (next == lit_Undef)
                    return l_True;
                ++stats_.iterations;
                ++stats_.decisions;
            }
            trail_lim_.push_back(static_cast<int>(trail_.size()));
            enqueue(next, CRef_Undef);
        }
    }
}

lbool
Solver::solve()
{
    assumptions_.clear();
    return solveInternal();
}

lbool
Solver::solveWithAssumptions(const LitVec &assumptions)
{
    for (const Lit p : assumptions)
        while (p.var() >= numVars())
            newVar();
    assumptions_ = assumptions;
    const lbool result = solveInternal();
    assumptions_.clear();
    return result;
}

lbool
Solver::solveInternal()
{
    // Clear the per-call outputs BEFORE the ok_ short-circuit: a
    // repeat call on a permanently-unsat solver must return the
    // empty core ("UNSAT regardless of assumptions"), not whatever
    // finalConflict() the previous call left behind.
    model_.clear();
    final_conflict_.clear();
    if (!ok_)
        return l_False;
    stop_requested_ = false;

    max_learnts_ = std::max(
        static_cast<double>(originals_.size()) *
            opts_.learnt_size_factor,
        8.0);
    learntsize_adjust_confl_ = 100;
    learntsize_adjust_cnt_ = 100;

    const Timer search_timer;
    const std::uint64_t propagations_before = stats_.propagations;

    lbool status = l_Undef;
    for (int restarts = 0; status.isUndef(); ++restarts) {
        const std::int64_t limit = restartLimit(restarts);
        status = search(limit);
        if (status.isUndef() && (budgetExhausted() || stopNow()))
            break;
        if (status.isUndef()) {
            ++stats_.restarts;
            if (metrics_.trace) {
                metrics_.trace->event(
                    "solver.restart",
                    {{"number", static_cast<double>(restarts + 1)},
                     {"limit_conflicts", static_cast<double>(limit)},
                     {"conflicts",
                      static_cast<double>(stats_.conflicts)}});
            }
            publishMetrics();
        }
    }

    if (metrics_.search_s) {
        const double seconds = search_timer.seconds();
        metrics_.search_s->add(seconds);
        if (seconds > 0.0) {
            metrics_.propagations_per_s->set(
                static_cast<double>(stats_.propagations -
                                    propagations_before) /
                seconds);
        }
    }
    publishMetrics();

    if (status.isTrue()) {
        model_.assign(assigns_.begin(), assigns_.end());
        // Fill unassigned (eliminated/pure) variables arbitrarily.
        for (auto &m : model_)
            if (m.isUndef())
                m = l_False;
    } else if (status.isFalse() && final_conflict_.empty()) {
        // Refuted without using any assumption: permanently unsat.
        ok_ = false;
    }
    cancelUntil(0);
    return status;
}

std::vector<bool>
Solver::boolModel() const
{
    std::vector<bool> out(model_.size());
    for (std::size_t i = 0; i < model_.size(); ++i)
        out[i] = model_[i].isTrue();
    return out;
}

void
Solver::unsatAdd(int ci)
{
    if (unsat_pos_[ci] >= 0)
        return;
    unsat_pos_[ci] = static_cast<int>(unsat_list_.size());
    unsat_list_.push_back(ci);
}

void
Solver::unsatRemove(int ci)
{
    const int pos = unsat_pos_[ci];
    if (pos < 0)
        return;
    const int last = unsat_list_.back();
    unsat_list_[pos] = last;
    unsat_pos_[last] = pos;
    unsat_list_.pop_back();
    unsat_pos_[ci] = -1;
}

void
Solver::untrackOriginal(int idx)
{
    // Undo a previous registration of index idx (addClause reusing
    // an original index): strip its occurrence-list entries so the
    // new literals do not double-count. source_[idx] still holds the
    // OLD literals at this point.
    if (idx >= static_cast<int>(sat_count_.size()))
        return;
    for (const Lit p : source_[idx]) {
        auto &occ = lit_occurs_[p.x];
        for (std::size_t i = 0; i < occ.size(); ++i) {
            if (occ[i] == idx) {
                occ[i] = occ.back();
                occ.pop_back();
                break;
            }
        }
    }
    sat_count_[idx] = 0;
    unsatAdd(idx);
}

void
Solver::trackOriginal(int idx)
{
    // Grow the per-clause arrays; gap indices (reserved by a sparse
    // original_index but never given literals) have zero satisfied
    // literals and therefore sit in the unsat set, matching the
    // scan over their empty source_ entries.
    const int old = static_cast<int>(sat_count_.size());
    if (idx >= old) {
        sat_count_.resize(idx + 1, 0);
        unsat_pos_.resize(idx + 1, -1);
        for (int i = old; i <= idx; ++i)
            unsatAdd(i);
    }
    int count = 0;
    for (const Lit p : source_[idx]) {
        lit_occurs_[p.x].push_back(idx);
        if (value(p).isTrue())
            ++count;
    }
    sat_count_[idx] = count;
    if (count > 0)
        unsatRemove(idx);
    else
        unsatAdd(idx);
}

bool
Solver::originalClauseSatisfiedNow(int idx) const
{
    if (track_sat_)
        return sat_count_[idx] > 0;
    for (const Lit p : source_[idx])
        if (value(p).isTrue())
            return true;
    return false;
}

void
Solver::unsatisfiedOriginalClausesInto(std::vector<int> &out) const
{
    out.clear();
    if (track_sat_) {
        // Sorted copy of the live sparse set: ascending order keeps
        // the result bit-identical to the scan implementation (and
        // independent of the swap-erase history).
        out.assign(unsat_list_.begin(), unsat_list_.end());
        std::sort(out.begin(), out.end());
        return;
    }
    for (int i = 0; i < numOriginalClauses(); ++i)
        if (!originalClauseSatisfiedNow(i))
            out.push_back(i);
}

std::vector<int>
Solver::unsatisfiedOriginalClauses() const
{
    std::vector<int> out;
    unsatisfiedOriginalClausesInto(out);
    return out;
}

} // namespace hyqsat::sat
