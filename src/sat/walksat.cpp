#include "sat/walksat.h"

#include <algorithm>
#include <cstdint>

namespace hyqsat::sat {

namespace {

/** Incremental bookkeeping of clause satisfaction counts. */
class State
{
  public:
    State(const Cnf &cnf, Rng &rng) : cnf_(cnf)
    {
        assign_.resize(cnf.numVars());
        for (int v = 0; v < cnf.numVars(); ++v)
            assign_[v] = rng.chance(0.5);
        occurrences_.resize(cnf.numVars());
        for (int i = 0; i < cnf.numClauses(); ++i)
            for (Lit p : cnf.clause(i))
                occurrences_[p.var()].push_back(i);
        true_count_.assign(cnf.numClauses(), 0);
        for (int i = 0; i < cnf.numClauses(); ++i) {
            for (Lit p : cnf.clause(i))
                if (litTrue(p))
                    ++true_count_[i];
            if (true_count_[i] == 0)
                unsat_.push_back(i);
        }
        unsat_pos_.assign(cnf.numClauses(), -1);
        for (std::size_t k = 0; k < unsat_.size(); ++k)
            unsat_pos_[unsat_[k]] = static_cast<int>(k);
    }

    bool litTrue(Lit p) const { return assign_[p.var()] != p.sign(); }

    int numUnsat() const { return static_cast<int>(unsat_.size()); }

    int unsatClause(std::size_t k) const { return unsat_[k]; }

    const std::vector<bool> &assignment() const { return assign_; }

    /** Number of clauses that become unsatisfied if @p v flips. */
    int
    breakCount(Var v) const
    {
        int breaks = 0;
        for (int ci : occurrences_[v]) {
            if (true_count_[ci] == 1) {
                // The single true literal must be the one over v.
                for (Lit p : cnf_.clause(ci)) {
                    if (p.var() == v && litTrue(p)) {
                        ++breaks;
                        break;
                    }
                }
            }
        }
        return breaks;
    }

    void
    flip(Var v)
    {
        assign_[v] = !assign_[v];
        for (int ci : occurrences_[v]) {
            int delta = 0;
            for (Lit p : cnf_.clause(ci))
                if (p.var() == v)
                    delta += litTrue(p) ? 1 : -1;
            const int before = true_count_[ci];
            true_count_[ci] += delta;
            if (before == 0 && true_count_[ci] > 0)
                removeUnsat(ci);
            else if (before > 0 && true_count_[ci] == 0)
                addUnsat(ci);
        }
    }

  private:
    void
    addUnsat(int ci)
    {
        unsat_pos_[ci] = static_cast<int>(unsat_.size());
        unsat_.push_back(ci);
    }

    void
    removeUnsat(int ci)
    {
        const int pos = unsat_pos_[ci];
        const int last = unsat_.back();
        unsat_[pos] = last;
        unsat_pos_[last] = pos;
        unsat_.pop_back();
        unsat_pos_[ci] = -1;
    }

    const Cnf &cnf_;
    std::vector<bool> assign_;
    std::vector<std::vector<int>> occurrences_;
    std::vector<int> true_count_;
    std::vector<int> unsat_;
    std::vector<int> unsat_pos_;
};

} // namespace

WalkSatResult
walkSat(const Cnf &cnf, const WalkSatOptions &opts)
{
    WalkSatResult result;
    Rng rng(opts.seed);

    // An empty clause can never be satisfied by flipping.
    for (const auto &c : cnf.clauses())
        if (c.empty())
            return result;

    for (int attempt = 0; attempt < opts.max_tries; ++attempt) {
        State state(cnf, rng);
        const std::uint64_t flips_per_try =
            opts.max_flips / std::max(opts.max_tries, 1);
        for (std::uint64_t f = 0; f < flips_per_try; ++f) {
            if (state.numUnsat() == 0) {
                result.satisfiable = true;
                result.model = state.assignment();
                return result;
            }
            const int ci = state.unsatClause(
                rng.below(static_cast<std::uint64_t>(state.numUnsat())));
            const auto &clause = cnf.clause(ci);

            Var pick = var_Undef;
            if (rng.chance(opts.noise)) {
                pick = clause[rng.below(clause.size())].var();
            } else {
                int best_break = INT32_MAX;
                for (Lit p : clause) {
                    const int b = state.breakCount(p.var());
                    if (b < best_break) {
                        best_break = b;
                        pick = p.var();
                    }
                }
            }
            state.flip(pick);
            ++result.flips;
        }
        if (state.numUnsat() == 0) {
            result.satisfiable = true;
            result.model = state.assignment();
            return result;
        }
    }
    return result;
}

} // namespace hyqsat::sat
