/**
 * @file
 * Tunable options for the CDCL solver. Two presets reproduce the
 * paper's baselines: minisatStyle() (VSIDS, Luby restarts) and
 * kissatStyle() (CHB-flavoured branching, faster restarts, more
 * aggressive clause-database reduction).
 */

#ifndef HYQSAT_SAT_SOLVER_OPTIONS_H
#define HYQSAT_SAT_SOLVER_OPTIONS_H

#include <cstdint>

namespace hyqsat::sat {

/** Branching heuristic selector. */
enum class Branching
{
    VSIDS,  ///< exponential VSIDS as in MiniSat/Chaff
    CHB,    ///< conflict-history-based bandit scores (Kissat family)
    Random, ///< uniform random (testing / ablation baseline)
};

/** Solver configuration knobs. */
struct SolverOptions
{
    /** Branching heuristic. */
    Branching branching = Branching::VSIDS;

    /** VSIDS activity decay factor (applied per conflict). */
    double var_decay = 0.95;

    /** Learnt clause activity decay factor. */
    double clause_decay = 0.999;

    /** Probability of a random decision instead of the heuristic. */
    double random_branch_freq = 0.0;

    /** Use Luby restarts (true) or geometric restarts (false). */
    bool luby_restarts = true;

    /** Base restart interval in conflicts. */
    int restart_first = 100;

    /** Geometric restart multiplier when luby_restarts is false. */
    double restart_inc = 1.5;

    /** Enable saving and reusing variable polarities. */
    bool phase_saving = true;

    /** Default polarity when no phase is saved (false = negative). */
    bool default_phase = false;

    /** Enable recursive conflict-clause minimization. */
    bool ccmin = true;

    /** Fraction of learnts kept at each database reduction. */
    double learnt_keep_ratio = 0.5;

    /** Initial learnt-database limit as a fraction of clauses. */
    double learnt_size_factor = 1.0 / 3.0;

    /** Growth of the learnt-database limit per reduction. */
    double learnt_size_inc = 1.1;

    /** CHB step size alpha (decays to chb_alpha_min). */
    double chb_alpha = 0.4;
    double chb_alpha_min = 0.06;
    double chb_alpha_decay = 1e-6;

    /** RNG seed for random decisions / polarity tiebreaks. */
    std::uint64_t seed = 91648253;

    /** Conflict budget; negative means unlimited. */
    std::int64_t conflict_budget = -1;

    /** Decision budget; negative means unlimited. */
    std::int64_t decision_budget = -1;

    /** Enable per-original-clause visit/activity instrumentation. */
    bool instrument_clauses = true;

    /**
     * Maintain per-original-clause satisfied-literal counters on the
     * trail (assign/unassign hooks) so originalClauseSatisfiedNow is
     * O(1) and unsatisfiedOriginalClauses is O(unsat) instead of a
     * full O(M·3) rescan. Requires instrument_clauses; results are
     * identical to the scan implementation (verified by tests).
     */
    bool incremental_clause_tracking = false;

    /** @return the MiniSat-like baseline configuration. */
    static SolverOptions
    minisatStyle()
    {
        SolverOptions o;
        o.branching = Branching::VSIDS;
        o.var_decay = 0.95;
        o.luby_restarts = true;
        o.restart_first = 100;
        return o;
    }

    /** @return the Kissat-like baseline configuration. */
    static SolverOptions
    kissatStyle()
    {
        SolverOptions o;
        o.branching = Branching::CHB;
        o.luby_restarts = true;
        o.restart_first = 50;
        o.learnt_keep_ratio = 0.4;
        o.default_phase = true;
        return o;
    }
};

/** Aggregate search counters exposed after (or during) solving. */
struct SolverStats
{
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned_clauses = 0;
    std::uint64_t removed_clauses = 0;
    std::uint64_t minimized_literals = 0;

    /** Learnt-database reductions (reduceDB invocations). */
    std::uint64_t reduce_dbs = 0;

    /** Clauses offered to the learnt-export hook (clause sharing). */
    std::uint64_t exported_clauses = 0;

    /** Foreign clauses attached through importClause(). */
    std::uint64_t imported_clauses = 0;

    /**
     * Paper-style iteration count: one iteration is one
     * decision / propagation / conflict-resolving cycle (§VI-B).
     */
    std::uint64_t iterations = 0;
};

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_SOLVER_OPTIONS_H
