/**
 * @file
 * Equivalence-preserving CNF preprocessing, SatELite-style:
 * top-level unit propagation, duplicate-literal / tautology
 * cleanup, subsumption (drop any clause that is a superset of
 * another) and self-subsuming resolution (strengthen a clause by
 * removing a literal whose resolvent is subsumed).
 *
 * All rewrites preserve logical equivalence over the original
 * variable set, so a model of the simplified formula (together with
 * the fixed units) is a model of the original - no reconstruction
 * stack is needed.
 *
 * Implemented as a fixed configuration of the staged pipeline in
 * src/simplify/ (library hyqsat_simplify); use simplify::Pipeline
 * directly for the stronger, reconstruction-based passes (variable
 * elimination, equivalent-literal substitution, probing,
 * vivification).
 */

#ifndef HYQSAT_SAT_SIMPLIFY_H
#define HYQSAT_SAT_SIMPLIFY_H

#include <vector>

#include "sat/cnf.h"

namespace hyqsat::sat {

/** Preprocessing switches. */
struct SimplifyOptions
{
    bool unit_propagation = true;
    bool subsumption = true;
    bool self_subsumption = true;

    /** Repeat the pipeline until it stops changing the formula. */
    int max_rounds = 8;
};

/** Result of preprocessing. */
struct SimplifyResult
{
    /** Simplified formula over the same variable indices. */
    Cnf cnf;

    /** False iff a top-level contradiction was derived. */
    bool satisfiable_possible = true;

    /** Literals fixed by unit propagation (part of every model). */
    LitVec fixed;

    // Statistics.
    int units_propagated = 0;
    int subsumed = 0;
    int strengthened = 0;
    int tautologies = 0;

    /**
     * Extend a model of the simplified formula with the fixed
     * literals to form a model of the original formula.
     */
    std::vector<bool>
    extendModel(std::vector<bool> model) const
    {
        for (Lit p : fixed) {
            if (p.var() >= static_cast<Var>(model.size()))
                model.resize(p.var() + 1, false);
            model[p.var()] = !p.sign();
        }
        return model;
    }
};

/** Preprocess @p cnf (see file comment). */
SimplifyResult simplifyCnf(const Cnf &cnf,
                           const SimplifyOptions &opts = {});

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_SIMPLIFY_H
