/**
 * @file
 * A CNF formula container independent of any solver: an ordered list
 * of clauses over a fixed variable count, with evaluation helpers.
 * Generators produce Cnf instances; solvers consume them.
 */

#ifndef HYQSAT_SAT_CNF_H
#define HYQSAT_SAT_CNF_H

#include <string>
#include <vector>

#include "sat/types.h"

namespace hyqsat::sat {

/** An immutable-after-build CNF formula. */
class Cnf
{
  public:
    Cnf() = default;

    /** Construct with @p num_vars variables and no clauses. */
    explicit Cnf(int num_vars) : num_vars_(num_vars) {}

    /** @return the number of variables. */
    int numVars() const { return num_vars_; }

    /** @return the number of clauses. */
    int numClauses() const { return static_cast<int>(clauses_.size()); }

    /** Ensure the variable count is at least @p n. */
    void
    ensureVars(int n)
    {
        if (n > num_vars_)
            num_vars_ = n;
    }

    /** Allocate and return a fresh variable. */
    Var
    newVar()
    {
        return num_vars_++;
    }

    /**
     * Append a clause; grows the variable count to cover its
     * literals. Duplicate literals are kept verbatim (solvers
     * deduplicate); an empty clause is legal and unsatisfiable.
     */
    void addClause(LitVec clause);

    /** Convenience overloads for short clauses. */
    void addClause(Lit a) { addClause(LitVec{a}); }
    void addClause(Lit a, Lit b) { addClause(LitVec{a, b}); }
    void addClause(Lit a, Lit b, Lit c) { addClause(LitVec{a, b, c}); }

    /** @return clause @p i. */
    const LitVec &clause(int i) const { return clauses_[i]; }

    /** @return all clauses. */
    const std::vector<LitVec> &clauses() const { return clauses_; }

    /**
     * Evaluate the formula under a complete assignment
     * (assignment[v] == true means variable v is true).
     * @return true iff every clause is satisfied.
     */
    bool eval(const std::vector<bool> &assignment) const;

    /** @return the number of clauses violated by @p assignment. */
    int countViolated(const std::vector<bool> &assignment) const;

    /** @return true iff clause @p i is satisfied by @p assignment. */
    bool clauseSatisfied(int i, const std::vector<bool> &assignment) const;

    /** @return the length of the longest clause (0 if none). */
    int maxClauseSize() const;

    /** @return true if every clause has at most three literals. */
    bool isThreeSat() const { return maxClauseSize() <= 3; }

    /** Optional human-readable name (benchmark id etc.). */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

  private:
    int num_vars_ = 0;
    std::vector<LitVec> clauses_;
    std::string name_;
};

/**
 * Rewrite a general CNF into 3-SAT by splitting long clauses with
 * fresh chaining variables: (l1 v l2 v l3 v l4 ...) becomes
 * (l1 v l2 v y1) (~y1 v l3 v y2) (~y2 v l4 ...) etc. Clauses of
 * size <= 3 are copied verbatim.
 */
Cnf toThreeSat(const Cnf &input);

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_CNF_H
