#include "sat/simplify.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace hyqsat::sat {

namespace {

/** 64-bit clause signature: bit per (var % 64). */
std::uint64_t
signature(const LitVec &clause)
{
    std::uint64_t sig = 0;
    for (Lit p : clause)
        sig |= 1ull << (p.var() & 63);
    return sig;
}

/** Is @p small a subset of @p big (both sorted)? */
bool
subset(const LitVec &small, const LitVec &big)
{
    std::size_t j = 0;
    for (Lit p : small) {
        while (j < big.size() && big[j] < p)
            ++j;
        if (j == big.size() || !(big[j] == p))
            return false;
        ++j;
    }
    return true;
}

/** Working clause set with liveness flags and occurrence lists. */
struct Working
{
    std::vector<LitVec> clauses;
    std::vector<char> dead;
    std::vector<std::uint64_t> sigs;
    // var -> clause indices containing the var (stale entries are
    // filtered through 'dead' on use).
    std::unordered_map<Var, std::vector<int>> occurs;

    void
    add(LitVec clause)
    {
        const int idx = static_cast<int>(clauses.size());
        for (Lit p : clause)
            occurs[p.var()].push_back(idx);
        sigs.push_back(signature(clause));
        clauses.push_back(std::move(clause));
        dead.push_back(0);
    }

    void
    refreshMeta(int idx)
    {
        sigs[idx] = signature(clauses[idx]);
    }
};

} // namespace

SimplifyResult
simplifyCnf(const Cnf &cnf, const SimplifyOptions &opts)
{
    SimplifyResult result;
    Working work;

    // Assignment fixed so far: l_Undef until a unit binds the var.
    std::vector<lbool> fixed_value(cnf.numVars(), l_Undef);
    LitVec unit_queue;

    // --- Load with duplicate/tautology cleanup.
    for (const auto &raw : cnf.clauses()) {
        LitVec clause = raw;
        std::sort(clause.begin(), clause.end());
        clause.erase(std::unique(clause.begin(), clause.end()),
                     clause.end());
        bool tautology = false;
        for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
            if (clause[i] == ~clause[i + 1]) {
                tautology = true;
                break;
            }
        }
        if (tautology) {
            ++result.tautologies;
            continue;
        }
        if (clause.empty()) {
            result.satisfiable_possible = false;
            result.cnf = Cnf(cnf.numVars());
            result.cnf.addClause(LitVec{});
            return result;
        }
        if (clause.size() == 1)
            unit_queue.push_back(clause[0]);
        work.add(std::move(clause));
    }

    auto contradiction = [&]() {
        result.satisfiable_possible = false;
        result.cnf = Cnf(cnf.numVars());
        result.cnf.addClause(LitVec{});
    };

    for (int round = 0; round < opts.max_rounds; ++round) {
        bool changed = false;

        // --- Unit propagation to fixpoint.
        while (opts.unit_propagation && !unit_queue.empty()) {
            const Lit unit = unit_queue.back();
            unit_queue.pop_back();
            const lbool current = fixed_value[unit.var()];
            if (!current.isUndef()) {
                if (current == lbool(unit.sign())) {
                    // Fixed to the opposite polarity: contradiction.
                    contradiction();
                    return result;
                }
                continue;
            }
            fixed_value[unit.var()] = lbool(!unit.sign());
            result.fixed.push_back(unit);
            ++result.units_propagated;
            changed = true;

            for (int ci : work.occurs[unit.var()]) {
                if (work.dead[ci])
                    continue;
                auto &clause = work.clauses[ci];
                const auto it = std::find_if(
                    clause.begin(), clause.end(), [&](Lit p) {
                        return p.var() == unit.var();
                    });
                if (it == clause.end())
                    continue; // stale occurrence
                if (*it == unit) {
                    work.dead[ci] = 1; // clause satisfied
                    continue;
                }
                clause.erase(it); // falsified literal drops out
                work.refreshMeta(ci);
                if (clause.empty()) {
                    contradiction();
                    return result;
                }
                if (clause.size() == 1)
                    unit_queue.push_back(clause[0]);
            }
        }

        // --- Subsumption and self-subsuming resolution. For each
        // live clause C pick its rarest variable and test against
        // that occurrence list only.
        if (opts.subsumption || opts.self_subsumption) {
            for (int ci = 0;
                 ci < static_cast<int>(work.clauses.size()); ++ci) {
                if (work.dead[ci])
                    continue;
                const auto &c = work.clauses[ci];

                Var rare = c[0].var();
                std::size_t best = static_cast<std::size_t>(-1);
                for (Lit p : c) {
                    const auto sz = work.occurs[p.var()].size();
                    if (sz < best) {
                        best = sz;
                        rare = p.var();
                    }
                }
                for (int di : work.occurs[rare]) {
                    if (di == ci || work.dead[di] || work.dead[ci])
                        continue;
                    auto &d = work.clauses[di];
                    if (d.size() < c.size())
                        continue;
                    if ((work.sigs[ci] & ~work.sigs[di]) != 0)
                        continue; // signature filter

                    if (opts.subsumption && subset(c, d)) {
                        work.dead[di] = 1;
                        ++result.subsumed;
                        changed = true;
                        continue;
                    }
                    if (!opts.self_subsumption)
                        continue;
                    // Self-subsumption: c with one literal flipped
                    // subsumes d => remove that flipped literal
                    // from d.
                    for (Lit p : c) {
                        LitVec flipped = c;
                        *std::find(flipped.begin(), flipped.end(),
                                   p) = ~p;
                        std::sort(flipped.begin(), flipped.end());
                        if (!subset(flipped, d))
                            continue;
                        const auto it = std::find(d.begin(), d.end(),
                                                  ~p);
                        if (it == d.end())
                            break;
                        d.erase(it);
                        work.refreshMeta(di);
                        ++result.strengthened;
                        changed = true;
                        if (d.empty()) {
                            contradiction();
                            return result;
                        }
                        if (d.size() == 1)
                            unit_queue.push_back(d[0]);
                        break;
                    }
                }
            }
        }

        if (!changed && unit_queue.empty())
            break;
    }

    // --- Emit the surviving clauses (units excluded: they live in
    // 'fixed'). Clauses satisfied by fixed literals are dropped;
    // none should remain false.
    result.cnf = Cnf(cnf.numVars());
    for (int ci = 0; ci < static_cast<int>(work.clauses.size());
         ++ci) {
        if (work.dead[ci])
            continue;
        const auto &clause = work.clauses[ci];
        if (clause.size() == 1 &&
            !fixed_value[clause[0].var()].isUndef()) {
            continue; // absorbed into 'fixed'
        }
        result.cnf.addClause(clause);
    }
    return result;
}

} // namespace hyqsat::sat
