/**
 * @file
 * Indexed binary max-heap over variable indices, ordered by an
 * external score array. Supports decrease/increase-key by index,
 * which the VSIDS/CHB branching heuristics need.
 */

#ifndef HYQSAT_SAT_HEAP_H
#define HYQSAT_SAT_HEAP_H

#include <utility>
#include <vector>

#include "sat/types.h"

namespace hyqsat::sat {

/**
 * Max-heap of Var keyed by a caller-owned score vector. The caller
 * mutates scores and then calls update() for the touched variable.
 */
class VarOrderHeap
{
  public:
    /** @param scores score array; index v gives var v's priority. */
    explicit VarOrderHeap(const std::vector<double> &scores)
        : scores_(scores)
    {}

    /** @return true if @p v is currently in the heap. */
    bool
    inHeap(Var v) const
    {
        return v < static_cast<Var>(index_.size()) && index_[v] >= 0;
    }

    /** @return true if the heap is empty. */
    bool empty() const { return heap_.empty(); }

    /** @return the number of queued variables. */
    std::size_t size() const { return heap_.size(); }

    /** Insert @p v (must not already be present). */
    void
    insert(Var v)
    {
        if (v >= static_cast<Var>(index_.size()))
            index_.resize(v + 1, -1);
        index_[v] = static_cast<int>(heap_.size());
        heap_.push_back(v);
        siftUp(index_[v]);
    }

    /** Re-establish heap order after @p v's score changed. */
    void
    update(Var v)
    {
        if (!inHeap(v))
            return;
        siftUp(index_[v]);
        siftDown(index_[v]);
    }

    /** Remove and return the maximum-score variable. */
    Var
    removeMax()
    {
        Var top = heap_[0];
        swapNodes(0, static_cast<int>(heap_.size()) - 1);
        index_[top] = -1;
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        return top;
    }

    /** Remove every queued variable. */
    void
    clear()
    {
        for (Var v : heap_)
            index_[v] = -1;
        heap_.clear();
    }

  private:
    void
    siftUp(int i)
    {
        while (i > 0) {
            int parent = (i - 1) / 2;
            if (scores_[heap_[i]] <= scores_[heap_[parent]])
                break;
            swapNodes(i, parent);
            i = parent;
        }
    }

    void
    siftDown(int i)
    {
        const int n = static_cast<int>(heap_.size());
        while (true) {
            int best = i;
            int l = 2 * i + 1, r = 2 * i + 2;
            if (l < n && scores_[heap_[l]] > scores_[heap_[best]])
                best = l;
            if (r < n && scores_[heap_[r]] > scores_[heap_[best]])
                best = r;
            if (best == i)
                break;
            swapNodes(i, best);
            i = best;
        }
    }

    void
    swapNodes(int a, int b)
    {
        std::swap(heap_[a], heap_[b]);
        index_[heap_[a]] = a;
        index_[heap_[b]] = b;
    }

    const std::vector<double> &scores_;
    std::vector<Var> heap_;
    std::vector<int> index_; // position of var in heap_, -1 if absent
};

} // namespace hyqsat::sat

#endif // HYQSAT_SAT_HEAP_H
