/**
 * @file
 * Console table printer used by the bench binaries to emit the
 * paper's tables and figure series in a readable fixed-width layout.
 */

#ifndef HYQSAT_UTIL_TABLE_H
#define HYQSAT_UTIL_TABLE_H

#include <string>
#include <vector>

namespace hyqsat {

/** Accumulates rows of strings and prints them column-aligned. */
class Table
{
  public:
    /** @param title optional caption printed above the table. */
    explicit Table(std::string title = "");

    /** Set the column headers. */
    void setHeader(std::vector<std::string> header);

    /** Append a row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the whole table to a string. */
    std::string str() const;

    /** Print the table to stdout. */
    void print() const;

    /** Format a double with @p digits decimal places. */
    static std::string num(double v, int digits = 2);

    /** Format a double in scientific notation with @p digits places. */
    static std::string sci(double v, int digits = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    // A row holding the single sentinel cell "\x01" renders as a rule.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hyqsat

#endif // HYQSAT_UTIL_TABLE_H
