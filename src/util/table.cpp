#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hyqsat {

namespace {
const std::string kRule = "\x01";
} // namespace

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows_.push_back({kRule});
}

std::string
Table::str() const
{
    // Compute column widths over header and all data rows.
    std::vector<std::size_t> widths;
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() == 1 && row[0] == kRule)
            return;
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            out << cell;
            out << std::string(widths[i] - cell.size() + 2, ' ');
        }
        out << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        out << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kRule)
            out << std::string(total, '-') << "\n";
        else
            emit(row);
    }
    return out.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::sci(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
    return buf;
}

} // namespace hyqsat
