/**
 * @file
 * Zero-dependency metrics registry and JSONL trace sink — the single
 * source of truth for every counter and timing the system reports
 * (Fig. 11's per-phase breakdown, Table II's end-to-end times, the
 * batch service's per-instance records, the bench trajectories).
 *
 * Design contract: a *disabled* registry costs one branch per record
 * site. Components resolve raw `Counter*` / `MetricTimer*` handles
 * once (at attach/construction time) and record through the null-safe
 * helpers (`metricInc` etc.); with no registry attached every handle
 * is null and each record site is a single predictable branch.
 *
 * Thread model: `Counter` and `Gauge` are relaxed atomics and may be
 * recorded from any thread. `MetricTimer` and `LatencyHistogram` are
 * single-writer (each component owns its handles on one thread); the
 * registry's name maps are mutex-guarded, and `merge()` is how
 * per-worker registries fold into a shared one after their threads
 * join. `TraceSink` serializes writers internally.
 */

#ifndef HYQSAT_UTIL_METRICS_H
#define HYQSAT_UTIL_METRICS_H

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace hyqsat {

/**
 * Render a double as a JSON-safe number: NaN / ±Inf become "0"
 * (invalid JSON otherwise), finite values use %.*g significant
 * digits. Used by every report writer that streams doubles.
 */
std::string jsonNumber(double v, int precision = 9);

/** Minimal JSON string escaping (names, paths, labels). */
std::string jsonEscape(std::string_view s);

/** Monotonic counter (relaxed atomic; safe from any thread). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-value gauge (relaxed atomic; safe from any thread). */
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Accumulating timer: total seconds + section count (one writer). */
class MetricTimer
{
  public:
    void
    add(double seconds, std::uint64_t sections = 1)
    {
        total_ += seconds;
        count_ += sections;
    }

    double seconds() const { return total_; }
    std::uint64_t count() const { return count_; }

    /** RAII guard timing one section (null timer = no-op). */
    class Scope
    {
      public:
        explicit Scope(MetricTimer *t) : t_(t) {}
        ~Scope()
        {
            if (t_)
                t_->add(timer_.seconds());
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        MetricTimer *t_;
        Timer timer_;
    };

  private:
    double total_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket latency/occupancy histogram: N upper bounds define
 * N+1 buckets, the last catching everything above the top bound
 * (one writer).
 */
class LatencyHistogram
{
  public:
    explicit LatencyHistogram(std::vector<double> upper_bounds);

    /** Record one observation into its bucket. */
    void record(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Count in bucket @p i (0 .. bounds().size(), last = overflow). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }
    double sum() const { return sum_; }

  private:
    friend class MetricsRegistry; // merge()
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * JSONL trace sink: one event per line with the event name, the
 * wall-clock offset since the sink opened, and a flat payload of
 * numeric and string fields. Thread-safe (writers serialize on an
 * internal mutex); intended for low-rate structural events (restarts,
 * pipeline stalls, portfolio outcomes), not per-propagation logging.
 */
class TraceSink
{
  public:
    /** Open @p path for writing (ok() reports failure). */
    explicit TraceSink(const std::string &path);

    /** Write to an externally owned stream (tests). */
    explicit TraceSink(std::ostream &out);

    ~TraceSink();

    bool ok() const;

    using NumField = std::pair<std::string_view, double>;
    using StrField = std::pair<std::string_view, std::string_view>;

    /** Emit one `{"t_s": ..., "event": name, ...}` line. */
    void event(std::string_view name,
               std::initializer_list<NumField> nums = {},
               std::initializer_list<StrField> strs = {});

  private:
    std::mutex mutex_;
    std::unique_ptr<std::ostream> owned_;
    std::ostream *out_;
    Timer epoch_;
};

/**
 * The registry: named counters, gauges, timers and histograms with
 * stable addresses (handles stay valid for the registry's lifetime),
 * an optional trace sink, JSON serialization and merge.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create; repeated calls return the same handle. */
    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    MetricTimer *timer(const std::string &name);

    /**
     * Find-or-create; @p upper_bounds is only consulted on creation
     * (an existing histogram keeps its buckets).
     */
    LatencyHistogram *histogram(const std::string &name,
                                std::vector<double> upper_bounds);

    /** Attach a trace sink (not owned; nullptr detaches). */
    void setTrace(TraceSink *sink) { trace_ = sink; }
    TraceSink *trace() const { return trace_; }

    /**
     * Fold @p other into this registry: counters/timers/histograms
     * accumulate, gauges take the other's last value. The source must
     * be quiescent (its writer threads joined).
     */
    void merge(const MetricsRegistry &other);

    /**
     * Serialize as one JSON document:
     * `{"schema": "hyqsat.metrics/1", "counters": {...}, "gauges":
     * {...}, "timers": {name: {"seconds", "count"}}, "histograms":
     * {name: {"bounds", "counts", "total", "sum"}}}`.
     * Every double goes through jsonNumber (no NaN/Inf can leak).
     */
    void writeJson(std::ostream &out) const;

    /**
     * Serialize as a Prometheus-style plain-text exposition (the
     * service's `/metrics` snapshot): every name is sanitized to
     * `hyqsat_<name>` with non-alphanumerics replaced by '_';
     * counters and gauges emit one `name value` line, timers emit
     * `_seconds`/`_count`, histograms emit cumulative
     * `_bucket{le="..."}` lines plus `_sum`/`_count`.
     */
    void writeText(std::ostream &out) const;

    /**
     * Flat (name, value) view for embedding in other reports:
     * counters and gauges by name, timers as `<name>_s`, histogram
     * totals as `<name>_total`. Sorted by name.
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

  private:
    mutable std::mutex mutex_; // guards the maps, not the values
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<MetricTimer>> timers_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
    TraceSink *trace_ = nullptr;
};

// ----------------------------------------------------------------------
// Null-safe record helpers: the one-branch-when-disabled contract.
// ----------------------------------------------------------------------

inline void
metricInc(Counter *c, std::uint64_t n = 1)
{
    if (c)
        c->add(n);
}

inline void
metricSet(Gauge *g, double v)
{
    if (g)
        g->set(v);
}

inline void
metricTime(MetricTimer *t, double seconds)
{
    if (t)
        t->add(seconds);
}

inline void
metricObserve(LatencyHistogram *h, double v)
{
    if (h)
        h->record(v);
}

} // namespace hyqsat

#endif // HYQSAT_UTIL_METRICS_H
