#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace hyqsat {

std::string
jsonNumber(double v, int precision)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

// ----------------------------------------------------------------------
// LatencyHistogram
// ----------------------------------------------------------------------

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    std::sort(bounds_.begin(), bounds_.end());
    counts_.assign(bounds_.size() + 1, 0);
}

void
LatencyHistogram::record(double v)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++total_;
    if (std::isfinite(v))
        sum_ += v;
}

// ----------------------------------------------------------------------
// TraceSink
// ----------------------------------------------------------------------

TraceSink::TraceSink(const std::string &path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get())
{
}

TraceSink::TraceSink(std::ostream &out) : out_(&out) {}

TraceSink::~TraceSink() = default;

bool
TraceSink::ok() const
{
    return out_ != nullptr && out_->good();
}

void
TraceSink::event(std::string_view name,
                 std::initializer_list<NumField> nums,
                 std::initializer_list<StrField> strs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    *out_ << "{\"t_s\": " << jsonNumber(epoch_.seconds())
          << ", \"event\": \"" << jsonEscape(name) << '"';
    for (const auto &[key, value] : nums)
        *out_ << ", \"" << jsonEscape(key)
              << "\": " << jsonNumber(value);
    for (const auto &[key, value] : strs)
        *out_ << ", \"" << jsonEscape(key) << "\": \""
              << jsonEscape(value) << '"';
    *out_ << "}\n";
    out_->flush();
}

// ----------------------------------------------------------------------
// MetricsRegistry
// ----------------------------------------------------------------------

namespace {

template <typename T, typename... Args>
T *
findOrCreate(std::map<std::string, std::unique_ptr<T>> &map,
             const std::string &name, Args &&...args)
{
    auto it = map.find(name);
    if (it == map.end()) {
        it = map.emplace(name, std::make_unique<T>(
                                   std::forward<Args>(args)...))
                 .first;
    }
    return it->second.get();
}

} // namespace

Counter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrCreate(counters_, name);
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrCreate(gauges_, name);
}

MetricTimer *
MetricsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrCreate(timers_, name);
}

LatencyHistogram *
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrCreate(histograms_, name, std::move(upper_bounds));
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto &[name, c] : other.counters_)
        findOrCreate(counters_, name)->add(c->value());
    for (const auto &[name, g] : other.gauges_)
        findOrCreate(gauges_, name)->set(g->value());
    for (const auto &[name, t] : other.timers_)
        findOrCreate(timers_, name)->add(t->seconds(), t->count());
    for (const auto &[name, h] : other.histograms_) {
        LatencyHistogram *mine =
            findOrCreate(histograms_, name, h->bounds());
        if (mine->bounds_ == h->bounds_) {
            for (std::size_t i = 0; i < h->counts_.size(); ++i)
                mine->counts_[i] += h->counts_[i];
            mine->total_ += h->total_;
            mine->sum_ += h->sum_;
        }
    }
}

void
MetricsRegistry::writeJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\n  \"schema\": \"hyqsat.metrics/1\",\n  \"counters\": {";
    const char *sep = "";
    for (const auto &[name, c] : counters_) {
        out << sep << "\n    \"" << jsonEscape(name)
            << "\": " << c->value();
        sep = ",";
    }
    out << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    sep = "";
    for (const auto &[name, g] : gauges_) {
        out << sep << "\n    \"" << jsonEscape(name)
            << "\": " << jsonNumber(g->value());
        sep = ",";
    }
    out << (gauges_.empty() ? "" : "\n  ") << "},\n  \"timers\": {";
    sep = "";
    for (const auto &[name, t] : timers_) {
        out << sep << "\n    \"" << jsonEscape(name)
            << "\": {\"seconds\": " << jsonNumber(t->seconds())
            << ", \"count\": " << t->count() << "}";
        sep = ",";
    }
    out << (timers_.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    sep = "";
    for (const auto &[name, h] : histograms_) {
        out << sep << "\n    \"" << jsonEscape(name)
            << "\": {\"bounds\": [";
        for (std::size_t i = 0; i < h->bounds_.size(); ++i)
            out << (i ? ", " : "") << jsonNumber(h->bounds_[i]);
        out << "], \"counts\": [";
        for (std::size_t i = 0; i < h->counts_.size(); ++i)
            out << (i ? ", " : "") << h->counts_[i];
        out << "], \"total\": " << h->total_
            << ", \"sum\": " << jsonNumber(h->sum_) << "}";
        sep = ",";
    }
    out << (histograms_.empty() ? "" : "\n  ") << "}\n}\n";
}

namespace {

/** `solver.wins.greedy-queue` -> `hyqsat_solver_wins_greedy_queue`. */
std::string
promName(const std::string &name)
{
    std::string out = "hyqsat_";
    out.reserve(out.size() + name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

void
MetricsRegistry::writeText(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        out << promName(name) << ' ' << c->value() << '\n';
    for (const auto &[name, g] : gauges_)
        out << promName(name) << ' ' << jsonNumber(g->value())
            << '\n';
    for (const auto &[name, t] : timers_) {
        const std::string p = promName(name);
        out << p << "_seconds " << jsonNumber(t->seconds()) << '\n'
            << p << "_count " << t->count() << '\n';
    }
    for (const auto &[name, h] : histograms_) {
        const std::string p = promName(name);
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h->bounds_.size(); ++i) {
            cumulative += h->counts_[i];
            out << p << "_bucket{le=\"" << jsonNumber(h->bounds_[i])
                << "\"} " << cumulative << '\n';
        }
        out << p << "_bucket{le=\"+Inf\"} " << h->total_ << '\n'
            << p << "_sum " << jsonNumber(h->sum_) << '\n'
            << p << "_count " << h->total_ << '\n';
    }
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters_.size() + gauges_.size() + timers_.size() +
                histograms_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, static_cast<double>(c->value()));
    for (const auto &[name, g] : gauges_)
        out.emplace_back(name, g->value());
    for (const auto &[name, t] : timers_)
        out.emplace_back(name + "_s", t->seconds());
    for (const auto &[name, h] : histograms_)
        out.emplace_back(name + "_total",
                         static_cast<double>(h->total_));
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace hyqsat
