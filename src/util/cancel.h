/**
 * @file
 * Cooperative cancellation primitive shared by every layer that can
 * block or loop for a long time: the CDCL search (decision and
 * conflict boundaries), the hybrid loop's sampling pipeline, the
 * async sampler's wait points and the portfolio racing layer.
 *
 * A StopToken is a single atomic flag. Owners call requestStop();
 * observers poll stopRequested() at their natural loop boundaries —
 * nothing is interrupted mid-operation, which keeps every data
 * structure consistent and makes cancellation latency the length of
 * one loop body (microseconds for CDCL, one poll interval for a
 * blocked sampler wait).
 */

#ifndef HYQSAT_UTIL_CANCEL_H
#define HYQSAT_UTIL_CANCEL_H

#include <atomic>

namespace hyqsat {

/** One-shot cooperative stop flag, safe to share across threads. */
class StopToken
{
  public:
    StopToken() = default;

    // The flag is an address-identity object: observers keep a
    // pointer to it, so it must never be copied or moved.
    StopToken(const StopToken &) = delete;
    StopToken &operator=(const StopToken &) = delete;

    /** Ask every observer to stop at its next cancellation point. */
    void
    requestStop() noexcept
    {
        stop_.store(true, std::memory_order_relaxed);
    }

    /** Polled by observers; relaxed is enough for a latched flag. */
    bool
    stopRequested() const noexcept
    {
        return stop_.load(std::memory_order_relaxed);
    }

    /** Re-arm the token (only when no observer is running). */
    void
    reset() noexcept
    {
        stop_.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> stop_{false};
};

} // namespace hyqsat

#endif // HYQSAT_UTIL_CANCEL_H
