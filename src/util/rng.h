/**
 * @file
 * Deterministic pseudo-random number generation for the whole library.
 *
 * All stochastic components (solvers, annealers, generators) take an
 * explicit Rng so experiments are reproducible from a single seed.
 * The engine is xoshiro256** seeded through splitmix64, which is fast
 * and has no observable bias for our use cases.
 */

#ifndef HYQSAT_UTIL_RNG_H
#define HYQSAT_UTIL_RNG_H

#include <cmath>
#include <cstdint>

namespace hyqsat {

/** xoshiro256** pseudo-random generator with convenience draws. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (any value, including 0). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        reseed(seed);
    }

    /** Re-initialize the state from a new seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into four state words.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** UniformRandomBitGenerator interface. */
    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ull; }

    /** @return an integer uniform in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return an integer uniform in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @return a double uniform in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** @return a standard normal draw (Marsaglia polar method). */
    double
    normal()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double mul = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * mul;
        have_spare_ = true;
        return u * mul;
    }

    /** @return a normal draw with the given mean and stddev. */
    double gaussian(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (std::size_t i = c.size(); i > 1; --i) {
            std::size_t j = below(i);
            using std::swap;
            swap(c[i - 1], c[j]);
        }
    }

    /** Pick a uniformly random element of a non-empty container. */
    template <typename Container>
    auto &
    pick(Container &c)
    {
        return c[below(c.size())];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace hyqsat

#endif // HYQSAT_UTIL_RNG_H
