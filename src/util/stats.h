/**
 * @file
 * Small statistics toolkit: online mean/variance (Welford), geometric
 * mean, min/max tracking, and a fixed-bin histogram. Used by the
 * benchmark harnesses to report the paper's avg / geomean / max / min
 * reduction columns and the energy distributions.
 */

#ifndef HYQSAT_UTIL_STATS_H
#define HYQSAT_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace hyqsat {

/** Online accumulator for mean, variance, geomean, min and max. */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** @return the number of observations. */
    std::uint64_t count() const { return n_; }

    /** @return the arithmetic mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return the population variance (0 if fewer than 2 samples). */
    double variance() const;

    /** @return the population standard deviation. */
    double stddev() const;

    /**
     * @return the geometric mean of the absolute values seen
     * (0 if empty or if any observation was 0).
     */
    double geomean() const;

    /** @return the smallest observation (+inf if empty). */
    double min() const { return min_; }

    /** @return the largest observation (-inf if empty). */
    double max() const { return max_; }

    /** @return the sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double log_sum_ = 0.0;
    bool saw_zero_ = false;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bin histogram over [lo, hi); out-of-range clamps. */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin
     * @param hi upper edge of the last bin (must exceed lo)
     * @param bins number of bins (must be > 0)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one observation (clamped into the edge bins). */
    void add(double x);

    /** @return the count in bin @p i. */
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }

    /** @return the center value of bin @p i. */
    double binCenter(std::size_t i) const;

    /** @return the number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** @return the total number of observations. */
    std::uint64_t total() const { return total_; }

    /** @return the fraction of mass in bin @p i (0 if empty). */
    double binFraction(std::size_t i) const;

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** @return the geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &values);

/** @return the arithmetic mean (0 for an empty vector). */
double mean(const std::vector<double> &values);

/** @return the population variance (0 for fewer than 2 values). */
double variance(const std::vector<double> &values);

/** @return the median (0 for an empty vector). */
double median(std::vector<double> values);

} // namespace hyqsat

#endif // HYQSAT_UTIL_STATS_H
