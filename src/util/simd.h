/**
 * @file
 * Runtime SIMD dispatch for the lockstep annealer kernels.
 *
 * Binaries stay portable: every kernel has a scalar fallback that is
 * always compiled, and the vector variants live in separate
 * translation units built with the matching -m flags. At run time
 * activeIsa() picks the widest instruction set the CPU supports —
 * overridable with the HYQSAT_SIMD environment variable ("scalar",
 * "avx2", "avx512", "neon") for golden tests and debugging.
 * Requesting an ISA the host cannot execute degrades to Scalar,
 * never crashes.
 *
 * The vector kernels are written to be bit-identical to the scalar
 * fallback (same per-lane operation order, no FMA contraction), so
 * the dispatch choice never changes results — only throughput.
 */

#ifndef HYQSAT_UTIL_SIMD_H
#define HYQSAT_UTIL_SIMD_H

#include <cstdlib>
#include <optional>
#include <string_view>

namespace hyqsat::simd {

/** Instruction sets the batch kernels are specialized for. */
enum class Isa
{
    Scalar = 0,
    Avx2 = 1,
    Neon = 2,
    Avx512 = 3,
};

/** Canonical lowercase name of an ISA. */
inline const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Avx2:
        return "avx2";
    case Isa::Neon:
        return "neon";
    case Isa::Avx512:
        return "avx512";
    }
    return "scalar";
}

/** Parse "scalar"/"avx2"/"avx512"/"neon" (exact, lowercase). */
inline std::optional<Isa>
parseIsa(std::string_view name)
{
    if (name == "scalar")
        return Isa::Scalar;
    if (name == "avx2")
        return Isa::Avx2;
    if (name == "neon")
        return Isa::Neon;
    if (name == "avx512")
        return Isa::Avx512;
    return std::nullopt;
}

/** Widest ISA the executing CPU supports (no env override). */
inline Isa
detectIsa()
{
#if defined(__x86_64__) || defined(__i386__)
    // The 512-bit kernel needs DQ (double-precision logic ops) on
    // top of the foundation subset.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq"))
        return Isa::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return Isa::Avx2;
    return Isa::Scalar;
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
    return Isa::Neon;
#else
    return Isa::Scalar;
#endif
}

/**
 * Clamp a requested ISA against what the host can run: a request the
 * host cannot execute degrades to Scalar (requesting Scalar on a
 * wide host is honored — that is how the golden tests pin the
 * fallback), and an AVX-512 host honors an explicit "avx2" request
 * (the narrower x86 tier is a strict subset).
 */
inline Isa
resolveIsa(Isa requested, Isa detected)
{
    if (requested == Isa::Scalar || requested == detected)
        return requested;
    if (requested == Isa::Avx2 && detected == Isa::Avx512)
        return requested;
    return Isa::Scalar;
}

/**
 * The ISA batch kernels should run with: HYQSAT_SIMD when set to a
 * valid name (clamped against the host), else the detected best.
 */
inline Isa
activeIsa()
{
    const char *env = std::getenv("HYQSAT_SIMD");
    const Isa detected = detectIsa();
    if (env != nullptr) {
        if (const auto requested = parseIsa(env))
            return resolveIsa(*requested, detected);
    }
    return detected;
}

} // namespace hyqsat::simd

#endif // HYQSAT_UTIL_SIMD_H
