/**
 * @file
 * Wall-clock timing helpers used by the benchmark harnesses and the
 * HybridSolver time breakdown.
 */

#ifndef HYQSAT_UTIL_TIMER_H
#define HYQSAT_UTIL_TIMER_H

#include <chrono>
#include <cstdint>

namespace hyqsat {

/** Monotonic wall-clock stopwatch with microsecond reporting. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** @return elapsed seconds since construction or reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** @return elapsed microseconds. */
    double micros() const { return seconds() * 1e6; }

    /** @return elapsed milliseconds. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Accumulates the total time of several timed sections. */
class TimeAccumulator
{
  public:
    /** RAII guard that adds the section's duration on destruction. */
    class Scope
    {
      public:
        explicit Scope(TimeAccumulator &acc) : acc_(acc) {}
        ~Scope() { acc_.add(timer_.seconds()); }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        TimeAccumulator &acc_;
        Timer timer_;
    };

    /** Add @p seconds to the running total. */
    void
    add(double seconds)
    {
        total_ += seconds;
        ++count_;
    }

    /** @return accumulated seconds. */
    double seconds() const { return total_; }

    /** @return number of timed sections. */
    std::uint64_t count() const { return count_; }

    /** Clear the accumulator. */
    void
    clear()
    {
        total_ = 0.0;
        count_ = 0;
    }

  private:
    double total_ = 0.0;
    std::uint64_t count_ = 0;
};

} // namespace hyqsat

#endif // HYQSAT_UTIL_TIMER_H
