/**
 * @file
 * Status-message helpers in the gem5 idiom: inform() for status,
 * warn() for suspicious-but-survivable conditions, fatal() for user
 * error (exit), panic() for internal invariant violations (abort).
 */

#ifndef HYQSAT_UTIL_LOGGING_H
#define HYQSAT_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace hyqsat {

/** Verbosity levels for the global logger. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global verbosity; messages below the level are dropped. */
void setLogLevel(LogLevel level);

/** @return the current global verbosity. */
LogLevel logLevel();

/** Print an informational status message (printf-style). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message, shown only at LogLevel::Debug. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warn about a condition that might indicate misbehaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate with exit(1) for a condition that is the user's fault
 * (bad configuration, invalid arguments), not a library bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort for a condition that should never happen regardless of what
 * the user does, i.e. an internal bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hyqsat

#endif // HYQSAT_UTIL_LOGGING_H
