#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hyqsat {

void
OnlineStats::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x == 0.0)
        saw_zero_ = true;
    else
        log_sum_ += std::log(std::fabs(x));
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineStats::geomean() const
{
    if (n_ == 0 || saw_zero_)
        return 0.0;
    return std::exp(log_sum_ / static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0)
        panic("Histogram requires at least one bin");
    if (hi <= lo)
        panic("Histogram range [%f, %f) is empty", lo, hi);
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double
geomean(const std::vector<double> &values)
{
    OnlineStats s;
    for (double v : values)
        s.add(v);
    return s.geomean();
}

double
mean(const std::vector<double> &values)
{
    OnlineStats s;
    for (double v : values)
        s.add(v);
    return s.mean();
}

double
variance(const std::vector<double> &values)
{
    OnlineStats s;
    for (double v : values)
        s.add(v);
    return s.variance();
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // namespace hyqsat
